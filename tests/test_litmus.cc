/**
 * @file
 * Litmus-test driver of the protocol conformance harness.
 *
 * Runs the litmus suite (check/litmus.hh) across protocols, page sizes
 * and block granularities, and demonstrates — by fault injection —
 * that a broken protocol is caught with a seed that replays the
 * failure bit-for-bit.
 *
 * The binary has a replay mode for debugging fuzz failures:
 *
 *   test_litmus --replay-seed=N [--replay-protocol=sc|hlrc|ideal]
 *               [--inject-drop-diff] [--inject-skip-invalidate]
 *
 * which re-runs seed N through the exact fuzzer code path and prints
 * each failure, bypassing googletest entirely.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "check/fuzz.hh"
#include "check/litmus.hh"

namespace swsm
{
namespace
{

struct Geometry
{
    std::uint32_t pageBytes;
    std::uint32_t blockBytes;
};

class LitmusSuite
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, Geometry>>
{};

TEST_P(LitmusSuite, AllOutcomesLegal)
{
    const auto [kind, geom] = GetParam();
    check::LitmusConfig cfg;
    cfg.protocol = kind;
    cfg.pageBytes = geom.pageBytes;
    cfg.blockBytes = geom.blockBytes;
    for (const check::LitmusResult &r : check::runAllLitmus(cfg))
        EXPECT_TRUE(r.passed) << r.test << ": " << r.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, LitmusSuite,
    ::testing::Combine(::testing::Values(ProtocolKind::Sc,
                                         ProtocolKind::Hlrc,
                                         ProtocolKind::Ideal),
                       ::testing::Values(Geometry{4096, 64},
                                         Geometry{1024, 32},
                                         Geometry{2048, 256})),
    [](const ::testing::TestParamInfo<LitmusSuite::ParamType> &info) {
        const ProtocolKind kind = std::get<0>(info.param);
        const Geometry geom = std::get<1>(info.param);
        return std::string(protocolKindName(kind)) + "_p" +
               std::to_string(geom.pageBytes) + "_b" +
               std::to_string(geom.blockBytes);
    });

// A few timing-perturbed schedules beyond the defaults; the broad
// sweep lives in test_fuzz (label fuzz-smoke).
TEST(LitmusSchedules, PerturbedSeedsPass)
{
    for (const ProtocolKind kind :
         {ProtocolKind::Sc, ProtocolKind::Hlrc}) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            for (const auto &f : check::replaySeed(kind, seed)) {
                ADD_FAILURE()
                    << protocolKindName(kind) << " seed " << f.seed
                    << " test " << f.test << ": " << f.detail;
            }
        }
    }
}

// ------------------------------------------------------------ mutations
//
// The harness's own correctness: an intentionally broken protocol must
// be caught, and the failure must replay from its recorded seed.

TEST(Mutation, HlrcDroppedDiffCaughtWithReplayableSeed)
{
    check::FuzzOptions opts;
    opts.protocol = ProtocolKind::Hlrc;
    opts.baseSeed = 100;
    opts.numSeeds = 3;
    opts.faults.dropDiffApply = true;

    const auto failures = check::fuzz(opts);
    ASSERT_FALSE(failures.empty())
        << "a protocol that drops diff application was not caught";

    // The recorded seed reproduces the identical failure.
    const check::FuzzFailure &f = failures.front();
    const auto replay =
        check::replaySeed(ProtocolKind::Hlrc, f.seed, opts.faults);
    ASSERT_FALSE(replay.empty());
    EXPECT_EQ(replay.front().test, f.test);
    EXPECT_EQ(replay.front().detail, f.detail);
}

TEST(Mutation, ScSkippedInvalidateCaughtWithReplayableSeed)
{
    check::FuzzOptions opts;
    opts.protocol = ProtocolKind::Sc;
    opts.baseSeed = 100;
    opts.numSeeds = 3;
    opts.faults.skipScInvalidate = true;

    const auto failures = check::fuzz(opts);
    ASSERT_FALSE(failures.empty())
        << "a protocol that skips invalidations was not caught";

    const check::FuzzFailure &f = failures.front();
    const auto replay =
        check::replaySeed(ProtocolKind::Sc, f.seed, opts.faults);
    ASSERT_FALSE(replay.empty());
    EXPECT_EQ(replay.front().test, f.test);
    EXPECT_EQ(replay.front().detail, f.detail);
}

TEST(Mutation, CleanProtocolsPassTheSameSeeds)
{
    // Control: the seeds used by the mutation tests pass unfaulted, so
    // the detections above are caused by the injected faults alone.
    for (const ProtocolKind kind :
         {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
        for (std::uint64_t seed = 100; seed < 103; ++seed) {
            for (const auto &f : check::replaySeed(kind, seed)) {
                ADD_FAILURE()
                    << protocolKindName(kind) << " seed " << f.seed
                    << " test " << f.test << ": " << f.detail;
            }
        }
    }
}

// --------------------------------------------------------- replay mode

int
replayMain(const std::string &proto_name, std::uint64_t seed,
           const check::FaultPlan &faults)
{
    ProtocolKind kind;
    if (proto_name == "sc") {
        kind = ProtocolKind::Sc;
    } else if (proto_name == "hlrc") {
        kind = ProtocolKind::Hlrc;
    } else if (proto_name == "ideal") {
        kind = ProtocolKind::Ideal;
    } else {
        std::fprintf(stderr, "unknown protocol '%s' (sc|hlrc|ideal)\n",
                     proto_name.c_str());
        return 2;
    }

    const auto failures = check::replaySeed(kind, seed, faults);
    if (failures.empty()) {
        std::printf("seed %" PRIu64 " (%s): all litmus tests passed\n",
                    seed, proto_name.c_str());
        return 0;
    }
    for (const check::FuzzFailure &f : failures) {
        std::printf("seed %" PRIu64 " (%s) test %s FAILED: %s\n", f.seed,
                    proto_name.c_str(), f.test.c_str(),
                    f.detail.c_str());
    }
    return 1;
}

} // namespace
} // namespace swsm

int
main(int argc, char **argv)
{
    std::uint64_t seed = 0;
    bool have_seed = false;
    std::string proto = "sc";
    swsm::check::FaultPlan faults;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--replay-seed=", 0) == 0) {
            seed = std::strtoull(arg.c_str() + 14, nullptr, 10);
            have_seed = true;
        } else if (arg.rfind("--replay-protocol=", 0) == 0) {
            proto = arg.substr(18);
        } else if (arg == "--inject-drop-diff") {
            faults.dropDiffApply = true;
        } else if (arg == "--inject-skip-invalidate") {
            faults.skipScInvalidate = true;
        }
    }
    if (have_seed)
        return swsm::replayMain(proto, seed, faults);

    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
