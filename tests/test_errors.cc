/**
 * @file
 * Failure-injection and misuse tests: the library must fail loudly and
 * precisely on broken programs and configurations, and the simulator's
 * deadlock detector must catch synchronization bugs instead of hanging.
 */

#include <gtest/gtest.h>

#include "machine/cluster.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

MachineParams
machine(ProtocolKind kind, int procs)
{
    MachineParams mp;
    mp.numProcs = kind == ProtocolKind::Ideal ? procs : procs;
    mp.protocol = kind;
    return mp;
}

TEST(Errors, MissingBarrierArrivalIsDeadlock)
{
    for (auto kind : {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
        Cluster c(machine(kind, 3));
        const BarrierId bar = c.allocBarrier();
        EXPECT_THROW(c.run([&](Thread &t) {
            if (t.id() != 2)
                t.barrier(bar); // thread 2 never arrives
        }),
                     FatalError)
            << protocolKindName(kind);
    }
}

TEST(Errors, AbandonedLockIsDeadlock)
{
    Cluster c(machine(ProtocolKind::Hlrc, 2));
    const LockId lock = c.allocLock();
    const BarrierId bar = c.allocBarrier();
    EXPECT_THROW(c.run([&](Thread &t) {
        if (t.id() == 0) {
            t.acquire(lock); // never released
        } else {
            t.compute(10000);
            t.acquire(lock); // waits forever
        }
        t.barrier(bar);
    }),
                 FatalError);
}

TEST(Errors, ReleasingUnheldLockIsFatal)
{
    Cluster c(machine(ProtocolKind::Hlrc, 2));
    const LockId lock = c.allocLock();
    EXPECT_THROW(c.run([&](Thread &t) {
        if (t.id() == 0)
            t.release(lock);
    }),
                 FatalError);
}

TEST(Errors, AllocationAfterRunIsFatal)
{
    Cluster c(machine(ProtocolKind::Ideal, 1));
    c.run([](Thread &) {});
    EXPECT_THROW(c.alloc(64), FatalError);
}

TEST(Errors, ZeroProcessorClusterIsFatal)
{
    MachineParams mp;
    mp.numProcs = 0;
    EXPECT_THROW(Cluster c(mp), FatalError);
}

TEST(Errors, TooManyNodesForScDirectoryIsFatal)
{
    MachineParams mp;
    mp.numProcs = 33; // the sharer bitmask holds 32 nodes
    mp.protocol = ProtocolKind::Sc;
    EXPECT_THROW(Cluster c(mp), FatalError);
}

TEST(Errors, NonPowerOfTwoPageSizeIsFatal)
{
    MachineParams mp;
    mp.pageBytes = 3000;
    EXPECT_THROW(Cluster c(mp), FatalError);
}

TEST(Errors, MoreProcsThanWorkStillRuns)
{
    // Degenerate partitions (empty ranges) must not crash or deadlock.
    Cluster c(machine(ProtocolKind::Hlrc, 16));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint32_t> a(c, 4);
    for (int i = 0; i < 4; ++i)
        a.init(c, i, 0);
    c.run([&](Thread &t) {
        if (t.id() < 4)
            a.put(t, t.id(), t.id() + 1);
        t.barrier(bar);
    });
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(a.peek(c, i), static_cast<std::uint32_t>(i + 1));
}

TEST(Errors, SingleProcessorRunsEveryProtocol)
{
    for (auto kind : {ProtocolKind::Hlrc, ProtocolKind::Sc,
                      ProtocolKind::Ideal}) {
        Cluster c(machine(kind, 1));
        const LockId lock = c.allocLock();
        const BarrierId bar = c.allocBarrier();
        SharedArray<std::uint64_t> a(c, 16);
        a.init(c, 3, 0);
        c.run([&](Thread &t) {
            t.acquire(lock);
            a.put(t, 3, 99);
            t.release(lock);
            t.barrier(bar);
        });
        EXPECT_EQ(a.peek(c, 3), 99u) << protocolKindName(kind);
    }
}

} // namespace
} // namespace swsm
