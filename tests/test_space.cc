/**
 * @file
 * Address space unit tests: allocation, alignment, home assignment
 * and the home byte store.
 */

#include <gtest/gtest.h>

#include "proto/address_space.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

TEST(AddressSpace, AllocationsAreAlignedAndDisjoint)
{
    AddressSpace space(4, 4096, 64);
    const GlobalAddr a = space.alloc(100, 64);
    const GlobalAddr b = space.alloc(100, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(space.size(), b + 100);
}

TEST(AddressSpace, PageAlignmentRespected)
{
    AddressSpace space(4, 4096, 64);
    space.alloc(10, 8);
    const GlobalAddr a = space.alloc(10, 4096);
    EXPECT_EQ(a % 4096, 0u);
}

TEST(AddressSpace, RoundRobinHomesByDefault)
{
    AddressSpace space(4, 4096, 64);
    space.alloc(4 * 4096, 4096);
    EXPECT_EQ(space.pageHome(0), 0);
    EXPECT_EQ(space.pageHome(1), 1);
    EXPECT_EQ(space.pageHome(2), 2);
    EXPECT_EQ(space.pageHome(3), 3);
}

TEST(AddressSpace, AllocAtHomesWholeRange)
{
    AddressSpace space(4, 4096, 64);
    const GlobalAddr a = space.allocAt(3 * 4096, 2);
    EXPECT_EQ(a % 4096, 0u);
    for (PageId p = space.pageOf(a); p <= space.pageOf(a + 3 * 4096 - 1);
         ++p)
        EXPECT_EQ(space.pageHome(p), 2);
}

TEST(AddressSpace, SetRangeHomeOverrides)
{
    AddressSpace space(4, 4096, 64);
    const GlobalAddr a = space.alloc(2 * 4096, 4096);
    space.setRangeHome(a + 4096, 4096, 3);
    EXPECT_EQ(space.pageHome(space.pageOf(a + 4096)), 3);
    EXPECT_NE(space.pageHome(space.pageOf(a)), 3);
    EXPECT_THROW(space.setRangeHome(a, 64, 99), FatalError);
}

TEST(AddressSpace, BlocksInheritPageHomes)
{
    AddressSpace space(4, 4096, 64);
    const GlobalAddr a = space.allocAt(4096, 1);
    const BlockId first = space.blockOf(a);
    const BlockId last = space.blockOf(a + 4095);
    EXPECT_EQ(last - first + 1, 4096u / 64u);
    for (BlockId b = first; b <= last; ++b)
        EXPECT_EQ(space.blockHome(b), 1);
}

TEST(AddressSpace, HomeStoreRoundTrips)
{
    AddressSpace space(2, 4096, 64);
    const GlobalAddr a = space.alloc(256);
    const std::uint64_t v = 0xdeadbeefcafef00dULL;
    space.initWrite(a + 8, &v, sizeof(v));
    std::uint64_t out = 0;
    space.initRead(a + 8, &out, sizeof(out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(*reinterpret_cast<const std::uint64_t *>(
                  space.homeBytes(a + 8)),
              v);
}

TEST(AddressSpace, GeometryHelpers)
{
    AddressSpace space(2, 4096, 256);
    space.alloc(3 * 4096);
    EXPECT_EQ(space.pageOf(4095), 0u);
    EXPECT_EQ(space.pageOf(4096), 1u);
    EXPECT_EQ(space.pageBase(2), 8192u);
    EXPECT_EQ(space.blockOf(255), 0u);
    EXPECT_EQ(space.blockOf(256), 1u);
    EXPECT_EQ(space.numBlocks(), space.size() / 256);
}

TEST(AddressSpace, RejectsBadGeometry)
{
    EXPECT_THROW(AddressSpace(0, 4096, 64), FatalError);
    EXPECT_THROW(AddressSpace(2, 3000, 64), FatalError);
    EXPECT_THROW(AddressSpace(2, 4096, 96), FatalError);
    AddressSpace ok(2, 4096, 8192); // page-multiple blocks allowed
    EXPECT_EQ(ok.blockBytes(), 8192u);
    AddressSpace space(2, 4096, 64);
    EXPECT_THROW(space.alloc(100, 3), FatalError);
}

} // namespace
} // namespace swsm
