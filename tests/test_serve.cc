/**
 * @file
 * Sweep-server stack: the shared-memory memo cache (round-trip,
 * persistence across attaches, checksum corruption, stale-header
 * rebuild), the result codec, and the server lifecycle over the wire
 * protocol — cache-hit replays are byte-identical, concurrent clients
 * asking for the same uncached configuration simulate it once, and a
 * corrupted segment is rejected and rebuilt instead of served.
 *
 * Every test routes segments and sockets into a private temp directory
 * via SWSM_SHM_DIR, so parallel ctest runs never share state and
 * nothing touches the developer's real /dev/shm cache.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "serve/result_codec.hh"
#include "serve/server.hh"
#include "serve/shard.hh"
#include "serve/shm_cache.hh"
#include "serve/shm_queue.hh"
#include "serve/wire.hh"
#include "serve/worker.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

/** Private SWSM_SHM_DIR per test: segments and sockets live there. */
class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/swsm_serve_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        ::setenv("SWSM_SHM_DIR", dir_.c_str(), 1);
    }

    void
    TearDown() override
    {
        ::unsetenv("SWSM_SHM_DIR");
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string sock() const { return dir_ + "/serve.sock"; }

    std::string dir_;
};

/** XOR one byte of @p path in place (segment corruption injection). */
void
flipByte(const std::string &path, std::uint64_t off)
{
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0) << path;
    std::uint8_t b = 0;
    ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(off)), 1);
    b ^= 0xff;
    ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(off)), 1);
    ::close(fd);
}

TEST_F(ServeTest, ShmCacheRoundtrip)
{
    ShmCache::Options o;
    o.name = "memo";
    o.keySchema = 1;
    o.slotCount = 16;
    o.arenaBytes = 1 << 16;
    ShmCache cache(o);
    EXPECT_FALSE(cache.wasRebuilt()); // fresh file, not a rebuild
    EXPECT_EQ(cache.slotCount(), 16u);

    ASSERT_TRUE(cache.put("alpha", "value-a"));
    ASSERT_TRUE(cache.put("beta", "value-b"));
    ASSERT_TRUE(cache.put("gamma", std::string(1000, 'x')));

    std::string v;
    EXPECT_TRUE(cache.get("alpha", v));
    EXPECT_EQ(v, "value-a");
    EXPECT_TRUE(cache.get("gamma", v));
    EXPECT_EQ(v, std::string(1000, 'x'));
    EXPECT_FALSE(cache.get("missing", v));

    // First writer wins: a second put for a live key is a no-op.
    EXPECT_TRUE(cache.put("alpha", "usurper"));
    EXPECT_TRUE(cache.get("alpha", v));
    EXPECT_EQ(v, "value-a");

    const ShmCache::Stats st = cache.stats();
    EXPECT_EQ(st.inserts, 3u);
    EXPECT_EQ(st.slotsUsed, 3u);
    EXPECT_EQ(st.hits, 3u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.evictions, 0u);

    std::size_t seen = 0;
    cache.forEach([&](std::string_view key, std::string_view value) {
        ++seen;
        if (key == "beta") {
            EXPECT_EQ(value, "value-b");
        }
    });
    EXPECT_EQ(seen, 3u);
}

TEST_F(ServeTest, ShmCachePersistsAcrossAttaches)
{
    ShmCache::Options o;
    o.name = "memo";
    o.keySchema = 1;
    o.slotCount = 16;
    o.arenaBytes = 1 << 16;
    {
        ShmCache cache(o);
        ASSERT_TRUE(cache.put("k", "persisted"));
    }
    ShmCache cache(o);
    EXPECT_FALSE(cache.wasRebuilt()); // valid header reattaches as-is
    std::string v;
    EXPECT_TRUE(cache.get("k", v));
    EXPECT_EQ(v, "persisted");
}

TEST_F(ServeTest, ShmCacheChecksumFailureReadsAsMissAndReclaims)
{
    ShmCache::Options o;
    o.name = "memo";
    o.keySchema = 1;
    o.slotCount = 16;
    o.arenaBytes = 1 << 16;
    const std::string key = "victim";
    {
        ShmCache cache(o);
        ASSERT_TRUE(cache.put(key, "payload"));
    }
    // First entry's value starts right after its key at the arena base.
    const std::uint64_t arena0 = 128 + 16ull * 64;
    flipByte(ShmCache::pathFor("memo"), arena0 + key.size());

    ShmCache cache(o);
    EXPECT_FALSE(cache.wasRebuilt()); // header is fine, one entry isn't
    std::string v;
    EXPECT_FALSE(cache.get(key, v));
    EXPECT_EQ(cache.stats().slotsUsed, 0u); // slot reclaimed

    // The reclaimed key is insertable and readable again.
    ASSERT_TRUE(cache.put(key, "replacement"));
    EXPECT_TRUE(cache.get(key, v));
    EXPECT_EQ(v, "replacement");
}

TEST_F(ServeTest, ShmCacheStaleHeaderRebuilds)
{
    ShmCache::Options o;
    o.name = "memo";
    o.keySchema = 1;
    o.slotCount = 16;
    o.arenaBytes = 1 << 16;
    {
        ShmCache cache(o);
        ASSERT_TRUE(cache.put("k", "old-schema"));
    }
    // A schema bump invalidates the whole segment.
    ShmCache::Options o2 = o;
    o2.keySchema = 2;
    {
        ShmCache cache(o2);
        EXPECT_TRUE(cache.wasRebuilt());
        std::string v;
        EXPECT_FALSE(cache.get("k", v));
        EXPECT_EQ(cache.stats().slotsUsed, 0u);
    }
    // So does a corrupted magic.
    flipByte(ShmCache::pathFor("memo"), 0);
    ShmCache cache(o2);
    EXPECT_TRUE(cache.wasRebuilt());
}

TEST_F(ServeTest, ResultCodecRoundtrip)
{
    ExperimentResult r;
    r.workload = "fft";
    r.config = "AO";
    r.protocol = "HLRC";
    r.parallelCycles = 123456789ull;
    r.sequentialCycles = 987654321ull;
    r.verified = true;
    r.hostSeconds = 1.5;
    r.stats.metrics.counters = {{"net.messages", 42},
                                {"proto.diffs", 7}};
    r.stats.metrics.gauges = {{"sim.events_per_sec", 1234.5}};
    HistogramData h;
    h.total = 10;
    h.buckets = {1, 0, 4, 5};
    r.stats.metrics.histograms = {{"net.latency", h}};

    const std::string blob = codec::encodeResult(r);
    EXPECT_TRUE(codec::isResultBlob(blob));

    ExperimentResult out;
    ASSERT_TRUE(codec::decodeResult(blob, out));
    EXPECT_EQ(out.workload, r.workload);
    EXPECT_EQ(out.config, r.config);
    EXPECT_EQ(out.protocol, r.protocol);
    EXPECT_EQ(out.parallelCycles, r.parallelCycles);
    EXPECT_EQ(out.sequentialCycles, r.sequentialCycles);
    EXPECT_EQ(out.verified, r.verified);
    EXPECT_EQ(out.hostSeconds, r.hostSeconds);
    EXPECT_EQ(out.stats.metrics.counters, r.stats.metrics.counters);
    EXPECT_EQ(out.stats.metrics.gauges, r.stats.metrics.gauges);
    ASSERT_EQ(out.stats.metrics.histograms.size(), 1u);
    EXPECT_EQ(out.stats.metrics.histograms[0].first, "net.latency");
    EXPECT_EQ(out.stats.metrics.histograms[0].second.total, h.total);
    EXPECT_EQ(out.stats.metrics.histograms[0].second.buckets, h.buckets);

    Cycles seq = 0;
    const std::string base = codec::encodeBaseline(424242);
    EXPECT_FALSE(codec::isResultBlob(base));
    ASSERT_TRUE(codec::decodeBaseline(base, seq));
    EXPECT_EQ(seq, 424242u);
}

TEST_F(ServeTest, ResultCodecRejectsMalformedBlobs)
{
    ExperimentResult r;
    r.workload = "w";
    const std::string blob = codec::encodeResult(r);

    ExperimentResult out;
    EXPECT_FALSE(codec::decodeResult("", out));
    EXPECT_FALSE(codec::decodeResult("SW", out));
    // Truncation and trailing garbage are both malformed.
    EXPECT_FALSE(
        codec::decodeResult({blob.data(), blob.size() - 1}, out));
    EXPECT_FALSE(codec::decodeResult(blob + "x", out));

    Cycles seq = 0;
    EXPECT_FALSE(codec::decodeBaseline(blob, seq)); // wrong magic
}

/** An in-process server on its own accept thread. */
struct ServerHandle
{
    std::unique_ptr<Server> server;
    std::thread thread;

    explicit ServerHandle(const ServerOptions &opts)
        : server(std::make_unique<Server>(opts))
    {
        thread = std::thread([this] { server->run(); });
    }

    ~ServerHandle()
    {
        server->stop();
        thread.join();
    }
};

ServerOptions
testServerOptions(const std::string &sock_path)
{
    ServerOptions opts;
    opts.sockPath = sock_path;
    opts.segment = "memo";
    opts.slotCount = 256;
    opts.arenaBytes = 8 << 20;
    opts.jobs = 2;
    opts.simThreads = 1;
    return opts;
}

wire::Request
fftRunRequest()
{
    wire::Request req;
    req.verb = "run";
    req.params = {{"app", "fft"},  {"size", "tiny"}, {"procs", "4"},
                  {"proto", "hlrc"}, {"comm", "A"},  {"cost", "O"}};
    return req;
}

TEST_F(ServeTest, ServerAnswersPingAndRejectsUnknownVerbs)
{
    ServerHandle h(testServerOptions(sock()));
    wire::Request req;
    req.verb = "ping";
    ServeResponse r = serveRequest(sock(), req);
    EXPECT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.events.size(), 1u);
    EXPECT_NE(r.events[0].find("\"pong\""), std::string::npos);

    req.verb = "frobnicate";
    r = serveRequest(sock(), req);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST_F(ServeTest, CacheHitReplayIsByteIdentical)
{
    ServerHandle h(testServerOptions(sock()));
    const ServeResponse r1 = serveRequest(sock(), fftRunRequest());
    ASSERT_TRUE(r1.ok) << r1.error;
    ASSERT_TRUE(r1.haveDone);
    EXPECT_EQ(r1.hits, 0u);
    EXPECT_EQ(r1.misses, 2u); // baseline + experiment
    EXPECT_FALSE(r1.report.empty());
    EXPECT_EQ(h.server->simRuns(), 2u);

    const ServeResponse r2 = serveRequest(sock(), fftRunRequest());
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.hits, 2u);
    EXPECT_EQ(r2.misses, 0u);
    EXPECT_EQ(h.server->simRuns(), 2u); // replay, no new simulations
    EXPECT_EQ(r1.report, r2.report);    // byte-identical BENCH doc
}

TEST_F(ServeTest, ConcurrentClientsSimulateOnce)
{
    ServerHandle h(testServerOptions(sock()));
    constexpr int kClients = 4;
    std::vector<ServeResponse> resp(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            resp[i] = serveRequest(sock(), fftRunRequest());
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(resp[i].ok) << resp[i].error;
        EXPECT_EQ(resp[i].report, resp[0].report);
    }
    // In-flight dedup: one baseline + one experiment, no matter how
    // many clients raced for the same uncached configuration.
    EXPECT_EQ(h.server->simRuns(), 2u);
    EXPECT_EQ(h.server->metrics().counter("serve.sim_runs"), 2u);
    EXPECT_EQ(h.server->metrics().counter("serve.requests"),
              static_cast<std::uint64_t>(kClients));
}

TEST_F(ServeTest, CorruptSegmentIsRejectedAndRebuilt)
{
    const ServerOptions opts = testServerOptions(sock());
    {
        ServerHandle h(opts);
        const ServeResponse r = serveRequest(sock(), fftRunRequest());
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.misses, 2u);
    }
    flipByte(ShmCache::pathFor(opts.segment), 0); // smash the magic

    ServerHandle h(opts);
    EXPECT_TRUE(h.server->cache().wasRebuilt());
    const ServeResponse r1 = serveRequest(sock(), fftRunRequest());
    ASSERT_TRUE(r1.ok) << r1.error;
    EXPECT_EQ(r1.hits, 0u); // stale data is gone, not served
    EXPECT_EQ(r1.misses, 2u);
    EXPECT_EQ(h.server->simRuns(), 2u);

    const ServeResponse r2 = serveRequest(sock(), fftRunRequest());
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.hits, 2u);
    EXPECT_EQ(r1.report, r2.report);
}

TEST_F(ServeTest, GridSecondPassIsAllHits)
{
    ServerHandle h(testServerOptions(sock()));
    wire::Request req;
    req.verb = "grid";
    req.params = {{"size", "tiny"}, {"procs", "4"}, {"apps", "fft"}};

    const ServeResponse r1 = serveRequest(sock(), req);
    ASSERT_TRUE(r1.ok) << r1.error;
    ASSERT_TRUE(r1.haveDone);
    EXPECT_EQ(r1.hits, 0u);
    EXPECT_GT(r1.misses, 0u);
    const std::uint64_t sims = h.server->simRuns();
    EXPECT_EQ(sims, r1.misses);

    const ServeResponse r2 = serveRequest(sock(), req);
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.misses, 0u); // acceptance: zero re-simulations
    EXPECT_EQ(r2.hits, r1.misses);
    EXPECT_EQ(h.server->simRuns(), sims);
    EXPECT_EQ(r1.report, r2.report);
}

// ---------------------------------------------------------------------
// Shared-memory job queue
// ---------------------------------------------------------------------

ShmQueue::Options
smallQueue(const char *name, std::uint32_t slots = 8)
{
    ShmQueue::Options o;
    o.name = name;
    o.slotCount = slots;
    return o;
}

TEST_F(ServeTest, ShmQueueLifecycleRoundtrip)
{
    ShmQueue q(smallQueue("jobq"));
    EXPECT_EQ(q.slotCount(), 8u);

    const std::string key = "tiny/p4/fft/hlrc/AO";
    ASSERT_TRUE(q.push(key));
    EXPECT_TRUE(q.contains(key));

    ShmQueue::Lease l;
    ASSERT_TRUE(q.tryPop(l));
    EXPECT_EQ(l.key, key);
    EXPECT_TRUE(q.contains(key)); // leased still counts as in flight
    EXPECT_TRUE(q.heartbeat(l));
    EXPECT_TRUE(q.complete(l));
    EXPECT_FALSE(q.contains(key));

    ShmQueue::Lease none;
    EXPECT_FALSE(q.tryPop(none));

    const ShmQueue::Stats st = q.stats();
    EXPECT_EQ(st.pushed, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.queued, 0u);
    EXPECT_EQ(st.leased, 0u);
}

TEST_F(ServeTest, ShmQueueFailureIsPickedUpExactlyOnce)
{
    ShmQueue q(smallQueue("jobq"));
    ASSERT_TRUE(q.push("tiny/baseline/fft"));
    ShmQueue::Lease l;
    ASSERT_TRUE(q.tryPop(l));
    ASSERT_TRUE(q.fail(l, "boom"));
    EXPECT_TRUE(q.contains("tiny/baseline/fft")); // failed = in flight

    std::string error;
    ASSERT_TRUE(q.takeFailure("tiny/baseline/fft", error));
    EXPECT_EQ(error, "boom");
    EXPECT_FALSE(q.takeFailure("tiny/baseline/fft", error));
    EXPECT_FALSE(q.contains("tiny/baseline/fft"));
    EXPECT_EQ(q.stats().failed, 1u);
}

TEST_F(ServeTest, ShmQueueRejectsOversizedKeysAndFullQueues)
{
    ShmQueue q(smallQueue("jobq", 2));
    EXPECT_FALSE(q.push(std::string(ShmQueue::maxKeyBytes + 1, 'k')));
    EXPECT_TRUE(q.push("a"));
    EXPECT_TRUE(q.push("b"));
    EXPECT_FALSE(q.push("c")); // full: every slot occupied
    EXPECT_EQ(q.stats().pushed, 2u);
}

TEST_F(ServeTest, ShmQueueReclaimRequeuesStaleLeaseAndFencesZombie)
{
    ShmQueue q(smallQueue("jobq"));
    ASSERT_TRUE(q.push("tiny/p4/fft/ideal"));
    ShmQueue::Lease dead;
    ASSERT_TRUE(q.tryPop(dead));

    // A live lease is not reclaimed.
    EXPECT_EQ(q.reclaimExpired(60000), 0);

    // Let the heartbeat go stale, then reclaim.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(q.reclaimExpired(1), 1);
    EXPECT_EQ(q.stats().reclaimed, 1u);
    EXPECT_EQ(q.stats().queued, 1u);

    // The job is leasable again; the zombie's old lease is fenced out
    // of every transition (the epoch moved on).
    ShmQueue::Lease fresh;
    ASSERT_TRUE(q.tryPop(fresh));
    EXPECT_EQ(fresh.key, dead.key);
    EXPECT_FALSE(q.heartbeat(dead));
    EXPECT_FALSE(q.complete(dead));
    EXPECT_FALSE(q.fail(dead, "late"));
    EXPECT_TRUE(q.complete(fresh));
    EXPECT_EQ(q.stats().completed, 1u);
}

TEST_F(ServeTest, ShmQueueIsSharedAcrossAttaches)
{
    ShmQueue producer(smallQueue("jobq"));
    ASSERT_TRUE(producer.push("tiny/baseline/lu"));

    ShmQueue consumer(smallQueue("jobq")); // second mapping, same file
    ShmQueue::Lease l;
    ASSERT_TRUE(consumer.tryPop(l));
    EXPECT_EQ(l.key, "tiny/baseline/lu");
    EXPECT_TRUE(consumer.complete(l));
    EXPECT_EQ(producer.stats().completed, 1u);
}

// ---------------------------------------------------------------------
// Worker job keys
// ---------------------------------------------------------------------

TEST_F(ServeTest, JobKeyRoundtripsEveryGrammarForm)
{
    JobSpec job;
    std::string err;

    ASSERT_TRUE(parseJobKey("tiny/baseline/fft", job, err)) << err;
    EXPECT_TRUE(job.baseline);
    EXPECT_EQ(job.item.app.name, "fft");
    EXPECT_EQ(job.size, SizeClass::Tiny);

    ASSERT_TRUE(parseJobKey("small/p8/fft/ideal", job, err)) << err;
    EXPECT_FALSE(job.baseline);
    EXPECT_TRUE(job.item.ideal);
    EXPECT_EQ(job.numProcs, 8);

    ASSERT_TRUE(parseJobKey("tiny/p4/fft/hlrc/AO", job, err)) << err;
    EXPECT_EQ(job.item.kind, ProtocolKind::Hlrc);
    EXPECT_EQ(job.item.commSet, 'A');
    EXPECT_EQ(job.item.protoSet, 'O');

    EXPECT_FALSE(parseJobKey("bogus", job, err));
    EXPECT_FALSE(parseJobKey("tiny/p4/nosuchapp/hlrc/AO", job, err));
    EXPECT_FALSE(parseJobKey("tiny/px/fft/hlrc/AO", job, err));
    EXPECT_FALSE(parseJobKey("tiny/p4/fft/hlrc/ZZ", job, err));
    EXPECT_FALSE(parseJobKey("tiny/p4/fft/mesi/AO", job, err));
}

// ---------------------------------------------------------------------
// Worker-process fan-out
// ---------------------------------------------------------------------

wire::Request
fftGridRequest()
{
    wire::Request req;
    req.verb = "grid";
    req.params = {{"size", "tiny"}, {"procs", "4"}, {"apps", "fft"}};
    return req;
}

/**
 * Strip the host-dependent report lines (wall-clock timing and the
 * serving host's scheduler settings) so reports produced by different
 * server instances can be byte-compared on everything deterministic.
 */
std::string
stripHostLines(const std::string &doc)
{
    std::istringstream in(doc);
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"hostSeconds\"") != std::string::npos ||
            line.find("\"jobs\"") != std::string::npos ||
            line.find("\"simThreads\"") != std::string::npos)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

TEST_F(ServeTest, WorkerGridMatchesInProcessAndReplaysByteIdentical)
{
    // Reference: the classic in-process server.
    std::string refDoc;
    {
        ServerOptions ref = testServerOptions(dir_ + "/ref.sock");
        ref.segment = "memo_ref";
        ServerHandle h(ref);
        const ServeResponse r =
            serveRequest(ref.sockPath, fftGridRequest());
        ASSERT_TRUE(r.ok) << r.error;
        refDoc = r.report;
    }

    ServerOptions opts = testServerOptions(sock());
    opts.workers = 2;
    ServerHandle h(opts);
    ASSERT_EQ(h.server->workerPids().size(), 2u);
    ASSERT_NE(h.server->jobQueue(), nullptr);

    const ServeResponse r1 = serveRequest(sock(), fftGridRequest());
    ASSERT_TRUE(r1.ok) << r1.error;
    EXPECT_EQ(r1.hits, 0u);
    EXPECT_GT(r1.misses, 0u);
    // Every miss travelled through the queue, and the queue drains. A
    // straggler lease can outlive the request (a benign duplicate from
    // the server's bounded re-push when a job was mid-transition), so
    // poll briefly rather than demanding an instantaneous drain.
    ShmQueue::Stats qs{};
    for (int i = 0; i < 500; ++i) {
        qs = h.server->jobQueue()->stats();
        if (qs.queued == 0 && qs.leased == 0 &&
            qs.pushed == qs.completed + qs.failed)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(qs.pushed, r1.misses);
    EXPECT_EQ(qs.pushed, qs.completed + qs.failed);
    EXPECT_EQ(qs.queued, 0u);
    EXPECT_EQ(qs.leased, 0u);

    // Worker-computed results equal in-process results on everything
    // deterministic (host timing necessarily differs between runs).
    EXPECT_EQ(stripHostLines(r1.report), stripHostLines(refDoc));

    // Replay through the same server is byte-identical.
    const ServeResponse r2 = serveRequest(sock(), fftGridRequest());
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.misses, 0u);
    EXPECT_EQ(r1.report, r2.report);
}

TEST_F(ServeTest, KilledWorkerIsReclaimedAndGridStillCompletes)
{
    ServerOptions opts = testServerOptions(sock());
    opts.workers = 1;
    opts.leaseTimeoutMs = 300;
    opts.workerHeartbeatMs = 50;
    ServerHandle h(opts);
    ASSERT_EQ(h.server->workerPids().size(), 1u);
    const pid_t victim = h.server->workerPids()[0];

    // Kill the only worker shortly after the grid starts; the
    // supervisor must reclaim its lease and respawn a replacement, and
    // the request must still complete.
    std::thread killer([victim] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        ::kill(victim, SIGKILL);
    });
    const ServeResponse r = serveRequest(sock(), fftGridRequest());
    killer.join();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.misses, 0u);

    // A replacement worker is (eventually) registered.
    for (int i = 0; i < 100; ++i) {
        const std::vector<pid_t> pids = h.server->workerPids();
        if (pids.size() == 1 && pids[0] != victim)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const std::vector<pid_t> pids = h.server->workerPids();
    ASSERT_EQ(pids.size(), 1u);
    EXPECT_NE(pids[0], victim);

    // And the result set is still the full, correct one.
    const ServeResponse r2 = serveRequest(sock(), fftGridRequest());
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.misses, 0u);
    EXPECT_EQ(r.report, r2.report);
}

// ---------------------------------------------------------------------
// Shard protocol
// ---------------------------------------------------------------------

TEST_F(ServeTest, ShardSelectionIsAPartition)
{
    const std::vector<std::string> keys = {
        "fft/hlrc/AO",  "fft/hlrc/HB", "fft/sc/AO", "fft/ideal",
        "lu/hlrc/AO",   "lu/ideal",    "sor/hlrc/WB",
        "water/hlrc/XO"};
    for (std::uint32_t shards = 1; shards <= 5; ++shards) {
        for (const std::string &key : keys) {
            int owners = 0;
            for (std::uint32_t i = 0; i < shards; ++i)
                owners += shard::selects(key, shards, i) ? 1 : 0;
            EXPECT_EQ(owners, 1)
                << key << " with " << shards << " shards";
        }
    }
}

TEST_F(ServeTest, ShardPeerParsing)
{
    std::vector<shard::Peer> peers;
    std::string err;
    ASSERT_TRUE(
        shard::parsePeers("localhost:7070,10.0.0.2:8080", peers, err)) << err;
    ASSERT_EQ(peers.size(), 2u);
    EXPECT_EQ(peers[0].host, "localhost");
    EXPECT_EQ(peers[0].port, 7070);
    EXPECT_EQ(peers[1].host, "10.0.0.2");
    EXPECT_EQ(peers[1].port, 8080);

    EXPECT_FALSE(shard::parsePeers("", peers, err));
    EXPECT_FALSE(shard::parsePeers("noport", peers, err));
    EXPECT_FALSE(shard::parsePeers("host:0", peers, err));
    EXPECT_FALSE(shard::parsePeers("host:notaport", peers, err));
    EXPECT_FALSE(shard::parsePeers(":7070", peers, err));
}

/** Start a TCP-enabled server, probing a few ports for a free one. */
std::unique_ptr<ServerHandle>
startTcpServer(ServerOptions opts, int &port_out)
{
    const int base =
        20000 + static_cast<int>(::getpid() % 20000u) + port_out;
    for (int attempt = 0; attempt < 20; ++attempt) {
        opts.tcpPort = base + attempt * 37;
        try {
            auto h = std::make_unique<ServerHandle>(opts);
            port_out = opts.tcpPort;
            return h;
        } catch (const FatalError &) {
            // port in use; try the next candidate
        }
    }
    return nullptr;
}

TEST_F(ServeTest, ShardLoopbackMergeMatchesLocalGrid)
{
    // Reference report from a classic single-process grid.
    std::string refDoc;
    {
        ServerOptions ref = testServerOptions(dir_ + "/ref.sock");
        ref.segment = "memo_ref";
        ServerHandle h(ref);
        const ServeResponse r =
            serveRequest(ref.sockPath, fftGridRequest());
        ASSERT_TRUE(r.ok) << r.error;
        refDoc = r.report;
    }

    // Two loopback "hosts", each with a private memo segment.
    ServerOptions aOpts = testServerOptions(dir_ + "/a.sock");
    aOpts.segment = "memo_a";
    ServerOptions bOpts = testServerOptions(dir_ + "/b.sock");
    bOpts.segment = "memo_b";
    int portA = 0;
    auto a = startTcpServer(aOpts, portA);
    ASSERT_NE(a, nullptr);
    int portB = 1; // distinct probe base
    auto b = startTcpServer(bOpts, portB);
    ASSERT_NE(b, nullptr);

    // Coordinate through host A's unix socket.
    wire::Request req = fftGridRequest();
    req.verb = "shard";
    req.params["peers"] = "127.0.0.1:" + std::to_string(portA) +
        ",127.0.0.1:" + std::to_string(portB);
    const ServeResponse merged = serveRequest(aOpts.sockPath, req);
    ASSERT_TRUE(merged.ok) << merged.error;
    ASSERT_FALSE(merged.report.empty());

    // The merged report equals the local one on everything
    // deterministic; the header is pinned to jobs=1/simThreads=1.
    EXPECT_EQ(stripHostLines(merged.report), stripHostLines(refDoc));
    EXPECT_NE(merged.report.find("\"jobs\": 1"), std::string::npos);

    // Re-merging (now fully cached on both peers) is byte-identical,
    // and so is merging with the peer order flipped.
    const ServeResponse again = serveRequest(aOpts.sockPath, req);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(merged.report, again.report);

    req.params["peers"] = "127.0.0.1:" + std::to_string(portB) +
        ",127.0.0.1:" + std::to_string(portA);
    const ServeResponse flipped = serveRequest(bOpts.sockPath, req);
    ASSERT_TRUE(flipped.ok) << flipped.error;
    EXPECT_EQ(merged.report, flipped.report);
}

// ---------------------------------------------------------------------
// Client resilience
// ---------------------------------------------------------------------

TEST_F(ServeTest, ClientTimesOutOnAWedgedServer)
{
    // A listener that accepts and then never responds.
    const std::string path = dir_ + "/wedged.sock";
    const int lfd = wire::listenUnix(path);
    ASSERT_GE(lfd, 0);

    ClientOptions copts;
    copts.timeoutMs = 100;
    wire::Request req;
    req.verb = "ping";
    const auto t0 = std::chrono::steady_clock::now();
    const ServeResponse r = serveRequest(path, req, {}, copts);
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("stalled"), std::string::npos) << r.error;
    EXPECT_LT(elapsed.count(), 5000);
    ::close(lfd);
}

TEST_F(ServeTest, ClientRetriesUntilTheServerAppears)
{
    // No listener yet: the first attempts fail, then one succeeds
    // once the server comes up during the backoff window.
    ServerOptions opts = testServerOptions(sock());
    std::unique_ptr<ServerHandle> h;
    std::thread starter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
        h = std::make_unique<ServerHandle>(opts);
    });

    ClientOptions copts;
    copts.retries = 20;
    copts.backoffMs = 25;
    wire::Request req;
    req.verb = "ping";
    const ServeResponse r = serveRequest(sock(), req, {}, copts);
    starter.join();
    EXPECT_TRUE(r.ok) << r.error;

    // Zero retries against a dead socket fails fast with a diagnostic.
    const ServeResponse dead =
        serveRequest(dir_ + "/nope.sock", req, {}, ClientOptions{});
    EXPECT_FALSE(dead.ok);
    EXPECT_NE(dead.error.find("cannot connect"), std::string::npos);
}

} // namespace
} // namespace swsm
