/**
 * @file
 * Sweep-server stack: the shared-memory memo cache (round-trip,
 * persistence across attaches, checksum corruption, stale-header
 * rebuild), the result codec, and the server lifecycle over the wire
 * protocol — cache-hit replays are byte-identical, concurrent clients
 * asking for the same uncached configuration simulate it once, and a
 * corrupted segment is rejected and rebuilt instead of served.
 *
 * Every test routes segments and sockets into a private temp directory
 * via SWSM_SHM_DIR, so parallel ctest runs never share state and
 * nothing touches the developer's real /dev/shm cache.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "serve/result_codec.hh"
#include "serve/server.hh"
#include "serve/shm_cache.hh"
#include "serve/wire.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

/** Private SWSM_SHM_DIR per test: segments and sockets live there. */
class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/swsm_serve_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        ::setenv("SWSM_SHM_DIR", dir_.c_str(), 1);
    }

    void
    TearDown() override
    {
        ::unsetenv("SWSM_SHM_DIR");
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string sock() const { return dir_ + "/serve.sock"; }

    std::string dir_;
};

/** XOR one byte of @p path in place (segment corruption injection). */
void
flipByte(const std::string &path, std::uint64_t off)
{
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0) << path;
    std::uint8_t b = 0;
    ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(off)), 1);
    b ^= 0xff;
    ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(off)), 1);
    ::close(fd);
}

TEST_F(ServeTest, ShmCacheRoundtrip)
{
    ShmCache::Options o;
    o.name = "memo";
    o.keySchema = 1;
    o.slotCount = 16;
    o.arenaBytes = 1 << 16;
    ShmCache cache(o);
    EXPECT_FALSE(cache.wasRebuilt()); // fresh file, not a rebuild
    EXPECT_EQ(cache.slotCount(), 16u);

    ASSERT_TRUE(cache.put("alpha", "value-a"));
    ASSERT_TRUE(cache.put("beta", "value-b"));
    ASSERT_TRUE(cache.put("gamma", std::string(1000, 'x')));

    std::string v;
    EXPECT_TRUE(cache.get("alpha", v));
    EXPECT_EQ(v, "value-a");
    EXPECT_TRUE(cache.get("gamma", v));
    EXPECT_EQ(v, std::string(1000, 'x'));
    EXPECT_FALSE(cache.get("missing", v));

    // First writer wins: a second put for a live key is a no-op.
    EXPECT_TRUE(cache.put("alpha", "usurper"));
    EXPECT_TRUE(cache.get("alpha", v));
    EXPECT_EQ(v, "value-a");

    const ShmCache::Stats st = cache.stats();
    EXPECT_EQ(st.inserts, 3u);
    EXPECT_EQ(st.slotsUsed, 3u);
    EXPECT_EQ(st.hits, 3u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.evictions, 0u);

    std::size_t seen = 0;
    cache.forEach([&](std::string_view key, std::string_view value) {
        ++seen;
        if (key == "beta") {
            EXPECT_EQ(value, "value-b");
        }
    });
    EXPECT_EQ(seen, 3u);
}

TEST_F(ServeTest, ShmCachePersistsAcrossAttaches)
{
    ShmCache::Options o;
    o.name = "memo";
    o.keySchema = 1;
    o.slotCount = 16;
    o.arenaBytes = 1 << 16;
    {
        ShmCache cache(o);
        ASSERT_TRUE(cache.put("k", "persisted"));
    }
    ShmCache cache(o);
    EXPECT_FALSE(cache.wasRebuilt()); // valid header reattaches as-is
    std::string v;
    EXPECT_TRUE(cache.get("k", v));
    EXPECT_EQ(v, "persisted");
}

TEST_F(ServeTest, ShmCacheChecksumFailureReadsAsMissAndReclaims)
{
    ShmCache::Options o;
    o.name = "memo";
    o.keySchema = 1;
    o.slotCount = 16;
    o.arenaBytes = 1 << 16;
    const std::string key = "victim";
    {
        ShmCache cache(o);
        ASSERT_TRUE(cache.put(key, "payload"));
    }
    // First entry's value starts right after its key at the arena base.
    const std::uint64_t arena0 = 128 + 16ull * 64;
    flipByte(ShmCache::pathFor("memo"), arena0 + key.size());

    ShmCache cache(o);
    EXPECT_FALSE(cache.wasRebuilt()); // header is fine, one entry isn't
    std::string v;
    EXPECT_FALSE(cache.get(key, v));
    EXPECT_EQ(cache.stats().slotsUsed, 0u); // slot reclaimed

    // The reclaimed key is insertable and readable again.
    ASSERT_TRUE(cache.put(key, "replacement"));
    EXPECT_TRUE(cache.get(key, v));
    EXPECT_EQ(v, "replacement");
}

TEST_F(ServeTest, ShmCacheStaleHeaderRebuilds)
{
    ShmCache::Options o;
    o.name = "memo";
    o.keySchema = 1;
    o.slotCount = 16;
    o.arenaBytes = 1 << 16;
    {
        ShmCache cache(o);
        ASSERT_TRUE(cache.put("k", "old-schema"));
    }
    // A schema bump invalidates the whole segment.
    ShmCache::Options o2 = o;
    o2.keySchema = 2;
    {
        ShmCache cache(o2);
        EXPECT_TRUE(cache.wasRebuilt());
        std::string v;
        EXPECT_FALSE(cache.get("k", v));
        EXPECT_EQ(cache.stats().slotsUsed, 0u);
    }
    // So does a corrupted magic.
    flipByte(ShmCache::pathFor("memo"), 0);
    ShmCache cache(o2);
    EXPECT_TRUE(cache.wasRebuilt());
}

TEST_F(ServeTest, ResultCodecRoundtrip)
{
    ExperimentResult r;
    r.workload = "fft";
    r.config = "AO";
    r.protocol = "HLRC";
    r.parallelCycles = 123456789ull;
    r.sequentialCycles = 987654321ull;
    r.verified = true;
    r.hostSeconds = 1.5;
    r.stats.metrics.counters = {{"net.messages", 42},
                                {"proto.diffs", 7}};
    r.stats.metrics.gauges = {{"sim.events_per_sec", 1234.5}};
    HistogramData h;
    h.total = 10;
    h.buckets = {1, 0, 4, 5};
    r.stats.metrics.histograms = {{"net.latency", h}};

    const std::string blob = codec::encodeResult(r);
    EXPECT_TRUE(codec::isResultBlob(blob));

    ExperimentResult out;
    ASSERT_TRUE(codec::decodeResult(blob, out));
    EXPECT_EQ(out.workload, r.workload);
    EXPECT_EQ(out.config, r.config);
    EXPECT_EQ(out.protocol, r.protocol);
    EXPECT_EQ(out.parallelCycles, r.parallelCycles);
    EXPECT_EQ(out.sequentialCycles, r.sequentialCycles);
    EXPECT_EQ(out.verified, r.verified);
    EXPECT_EQ(out.hostSeconds, r.hostSeconds);
    EXPECT_EQ(out.stats.metrics.counters, r.stats.metrics.counters);
    EXPECT_EQ(out.stats.metrics.gauges, r.stats.metrics.gauges);
    ASSERT_EQ(out.stats.metrics.histograms.size(), 1u);
    EXPECT_EQ(out.stats.metrics.histograms[0].first, "net.latency");
    EXPECT_EQ(out.stats.metrics.histograms[0].second.total, h.total);
    EXPECT_EQ(out.stats.metrics.histograms[0].second.buckets, h.buckets);

    Cycles seq = 0;
    const std::string base = codec::encodeBaseline(424242);
    EXPECT_FALSE(codec::isResultBlob(base));
    ASSERT_TRUE(codec::decodeBaseline(base, seq));
    EXPECT_EQ(seq, 424242u);
}

TEST_F(ServeTest, ResultCodecRejectsMalformedBlobs)
{
    ExperimentResult r;
    r.workload = "w";
    const std::string blob = codec::encodeResult(r);

    ExperimentResult out;
    EXPECT_FALSE(codec::decodeResult("", out));
    EXPECT_FALSE(codec::decodeResult("SW", out));
    // Truncation and trailing garbage are both malformed.
    EXPECT_FALSE(
        codec::decodeResult({blob.data(), blob.size() - 1}, out));
    EXPECT_FALSE(codec::decodeResult(blob + "x", out));

    Cycles seq = 0;
    EXPECT_FALSE(codec::decodeBaseline(blob, seq)); // wrong magic
}

/** An in-process server on its own accept thread. */
struct ServerHandle
{
    std::unique_ptr<Server> server;
    std::thread thread;

    explicit ServerHandle(const ServerOptions &opts)
        : server(std::make_unique<Server>(opts))
    {
        thread = std::thread([this] { server->run(); });
    }

    ~ServerHandle()
    {
        server->stop();
        thread.join();
    }
};

ServerOptions
testServerOptions(const std::string &sock_path)
{
    ServerOptions opts;
    opts.sockPath = sock_path;
    opts.segment = "memo";
    opts.slotCount = 256;
    opts.arenaBytes = 8 << 20;
    opts.jobs = 2;
    opts.simThreads = 1;
    return opts;
}

wire::Request
fftRunRequest()
{
    wire::Request req;
    req.verb = "run";
    req.params = {{"app", "fft"},  {"size", "tiny"}, {"procs", "4"},
                  {"proto", "hlrc"}, {"comm", "A"},  {"cost", "O"}};
    return req;
}

TEST_F(ServeTest, ServerAnswersPingAndRejectsUnknownVerbs)
{
    ServerHandle h(testServerOptions(sock()));
    wire::Request req;
    req.verb = "ping";
    ServeResponse r = serveRequest(sock(), req);
    EXPECT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.events.size(), 1u);
    EXPECT_NE(r.events[0].find("\"pong\""), std::string::npos);

    req.verb = "frobnicate";
    r = serveRequest(sock(), req);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST_F(ServeTest, CacheHitReplayIsByteIdentical)
{
    ServerHandle h(testServerOptions(sock()));
    const ServeResponse r1 = serveRequest(sock(), fftRunRequest());
    ASSERT_TRUE(r1.ok) << r1.error;
    ASSERT_TRUE(r1.haveDone);
    EXPECT_EQ(r1.hits, 0u);
    EXPECT_EQ(r1.misses, 2u); // baseline + experiment
    EXPECT_FALSE(r1.report.empty());
    EXPECT_EQ(h.server->simRuns(), 2u);

    const ServeResponse r2 = serveRequest(sock(), fftRunRequest());
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.hits, 2u);
    EXPECT_EQ(r2.misses, 0u);
    EXPECT_EQ(h.server->simRuns(), 2u); // replay, no new simulations
    EXPECT_EQ(r1.report, r2.report);    // byte-identical BENCH doc
}

TEST_F(ServeTest, ConcurrentClientsSimulateOnce)
{
    ServerHandle h(testServerOptions(sock()));
    constexpr int kClients = 4;
    std::vector<ServeResponse> resp(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            resp[i] = serveRequest(sock(), fftRunRequest());
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(resp[i].ok) << resp[i].error;
        EXPECT_EQ(resp[i].report, resp[0].report);
    }
    // In-flight dedup: one baseline + one experiment, no matter how
    // many clients raced for the same uncached configuration.
    EXPECT_EQ(h.server->simRuns(), 2u);
    EXPECT_EQ(h.server->metrics().counter("serve.sim_runs"), 2u);
    EXPECT_EQ(h.server->metrics().counter("serve.requests"),
              static_cast<std::uint64_t>(kClients));
}

TEST_F(ServeTest, CorruptSegmentIsRejectedAndRebuilt)
{
    const ServerOptions opts = testServerOptions(sock());
    {
        ServerHandle h(opts);
        const ServeResponse r = serveRequest(sock(), fftRunRequest());
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.misses, 2u);
    }
    flipByte(ShmCache::pathFor(opts.segment), 0); // smash the magic

    ServerHandle h(opts);
    EXPECT_TRUE(h.server->cache().wasRebuilt());
    const ServeResponse r1 = serveRequest(sock(), fftRunRequest());
    ASSERT_TRUE(r1.ok) << r1.error;
    EXPECT_EQ(r1.hits, 0u); // stale data is gone, not served
    EXPECT_EQ(r1.misses, 2u);
    EXPECT_EQ(h.server->simRuns(), 2u);

    const ServeResponse r2 = serveRequest(sock(), fftRunRequest());
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.hits, 2u);
    EXPECT_EQ(r1.report, r2.report);
}

TEST_F(ServeTest, GridSecondPassIsAllHits)
{
    ServerHandle h(testServerOptions(sock()));
    wire::Request req;
    req.verb = "grid";
    req.params = {{"size", "tiny"}, {"procs", "4"}, {"apps", "fft"}};

    const ServeResponse r1 = serveRequest(sock(), req);
    ASSERT_TRUE(r1.ok) << r1.error;
    ASSERT_TRUE(r1.haveDone);
    EXPECT_EQ(r1.hits, 0u);
    EXPECT_GT(r1.misses, 0u);
    const std::uint64_t sims = h.server->simRuns();
    EXPECT_EQ(sims, r1.misses);

    const ServeResponse r2 = serveRequest(sock(), req);
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.misses, 0u); // acceptance: zero re-simulations
    EXPECT_EQ(r2.hits, r1.misses);
    EXPECT_EQ(h.server->simRuns(), sims);
    EXPECT_EQ(r1.report, r2.report);
}

} // namespace
} // namespace swsm
