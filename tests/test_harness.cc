/**
 * @file
 * Harness-level tests: configuration expansion, parameter-set
 * invariants, result caching, and the coarse performance-monotonicity
 * properties the whole study rests on (better layer costs never make a
 * deterministic run slower, worse costs never make it faster).
 */

#include <gtest/gtest.h>

#include "apps/app_registry.hh"
#include "harness/sweep.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

TEST(ExperimentConfig, NamesFollowThePaper)
{
    ExperimentConfig cfg;
    EXPECT_EQ(cfg.name(), "AO");
    cfg.commSet = 'B';
    cfg.protoSet = 'B';
    EXPECT_EQ(cfg.name(), "BB");
    cfg.protocol = ProtocolKind::Ideal;
    EXPECT_EQ(cfg.name(), "Ideal");
}

TEST(ExperimentConfig, MachineParamsExpandCorrectly)
{
    ExperimentConfig cfg;
    cfg.commSet = 'W';
    cfg.protoSet = 'H';
    cfg.numProcs = 4;
    cfg.blockBytes = 1024;
    const MachineParams mp = cfg.machineParams();
    EXPECT_EQ(mp.numProcs, 4);
    EXPECT_EQ(mp.blockBytes, 1024u);
    EXPECT_EQ(mp.comm.hostOverhead, CommParams::worse().hostOverhead);
    EXPECT_EQ(mp.proto.handlerBase, ProtoParams::halfway().handlerBase);
}

TEST(ExperimentConfig, UnknownSetLettersAreFatal)
{
    ExperimentConfig cfg;
    cfg.commSet = 'Q';
    EXPECT_THROW(cfg.machineParams(), FatalError);
    cfg.commSet = 'A';
    cfg.protoSet = 'Z';
    EXPECT_THROW(cfg.machineParams(), FatalError);
}

TEST(ProtoParamSets, OrderedBySeverity)
{
    const ProtoParams o = ProtoParams::original();
    const ProtoParams h = ProtoParams::halfway();
    const ProtoParams b = ProtoParams::best();
    EXPECT_GT(o.diffComparePerWord, h.diffComparePerWord);
    EXPECT_GT(h.diffComparePerWord, b.diffComparePerWord);
    EXPECT_EQ(b.diffComparePerWord, 0u);
    EXPECT_EQ(b.handlerBase, 0u);
    // The SC handler cost is deliberately NOT varied across sets.
    EXPECT_EQ(o.scHandlerBase, h.scHandlerBase);
    EXPECT_EQ(o.scHandlerBase, b.scHandlerBase);
}

TEST(Figure3Configs, BaseListAndFullList)
{
    const auto base = figure3Configs(false);
    EXPECT_EQ(base.size(), 6u);
    // The base system must be present.
    bool has_ao = false;
    for (const auto &[c, p] : base)
        has_ao |= c == 'A' && p == 'O';
    EXPECT_TRUE(has_ao);
    const auto full = figure3Configs(true);
    EXPECT_GT(full.size(), base.size());
}

TEST(SweepOptions, ParseRecognizesFlags)
{
    SweepOptions opts;
    char prog[] = "prog";
    char quick[] = "--quick";
    char procs[] = "--procs=4";
    char apps[] = "--apps=fft,lu";
    char full[] = "--full";
    char *argv[] = {prog, quick, procs, apps, full};
    EXPECT_TRUE(opts.parse(5, argv));
    EXPECT_EQ(opts.size, SizeClass::Tiny);
    EXPECT_EQ(opts.numProcs, 4);
    EXPECT_TRUE(opts.full);
    ASSERT_EQ(opts.apps.size(), 2u);
    EXPECT_EQ(opts.apps[0], "fft");
    EXPECT_EQ(opts.apps[1], "lu");
    EXPECT_EQ(opts.selectedApps().size(), 2u);
}

TEST(SweepOptions, ParseRejectsUnknown)
{
    SweepOptions opts;
    char prog[] = "prog";
    char bogus[] = "--bogus";
    char *argv[] = {prog, bogus};
    EXPECT_FALSE(opts.parse(2, argv));
}

TEST(SweepRunner, CachesResultsAndBaselines)
{
    SweepOptions opts;
    opts.size = SizeClass::Tiny;
    opts.numProcs = 4;
    SweepRunner runner(opts);
    const AppInfo &app = findApp("lu");
    const Cycles b1 = runner.baseline(app);
    const Cycles b2 = runner.baseline(app);
    EXPECT_EQ(b1, b2);
    const ExperimentResult &r1 =
        runner.run(app, ProtocolKind::Hlrc, 'A', 'O');
    const ExperimentResult &r2 =
        runner.run(app, ProtocolKind::Hlrc, 'A', 'O');
    EXPECT_EQ(&r1, &r2); // same cached object
}

TEST(SweepRunner, ScCollapsesProtoVariants)
{
    SweepOptions opts;
    opts.size = SizeClass::Tiny;
    opts.numProcs = 4;
    SweepRunner runner(opts);
    const AppInfo &app = findApp("lu");
    const ExperimentResult &ao =
        runner.run(app, ProtocolKind::Sc, 'A', 'O');
    const ExperimentResult &ab =
        runner.run(app, ProtocolKind::Sc, 'A', 'B');
    EXPECT_EQ(ao.parallelCycles, ab.parallelCycles);
}

struct MonotonicityCase
{
    const char *app;
    ProtocolKind kind;
};

/**
 * Property: for a fixed deterministic application, layer costs order
 * execution time — worse communication is never faster than the base,
 * and the base is never faster than best communication.
 */
class LayerMonotonicity
    : public ::testing::TestWithParam<MonotonicityCase>
{
};

TEST_P(LayerMonotonicity, CommCostsOrderExecutionTime)
{
    SweepOptions opts;
    opts.size = SizeClass::Tiny;
    opts.numProcs = 8;
    SweepRunner runner(opts);
    const AppInfo &app = findApp(GetParam().app);
    const Cycles worse =
        runner.run(app, GetParam().kind, 'W', 'O').parallelCycles;
    const Cycles base =
        runner.run(app, GetParam().kind, 'A', 'O').parallelCycles;
    const Cycles best =
        runner.run(app, GetParam().kind, 'B', 'O').parallelCycles;
    EXPECT_GE(worse, base);
    EXPECT_GE(base, best);
}

TEST_P(LayerMonotonicity, ProtoCostsOrderHlrcExecutionTime)
{
    if (GetParam().kind != ProtocolKind::Hlrc)
        GTEST_SKIP() << "protocol costs only vary for HLRC";
    SweepOptions opts;
    opts.size = SizeClass::Tiny;
    opts.numProcs = 8;
    SweepRunner runner(opts);
    const AppInfo &app = findApp(GetParam().app);
    const Cycles original =
        runner.run(app, ProtocolKind::Hlrc, 'A', 'O').parallelCycles;
    const Cycles best =
        runner.run(app, ProtocolKind::Hlrc, 'A', 'B').parallelCycles;
    EXPECT_GE(original, best);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, LayerMonotonicity,
    ::testing::Values(MonotonicityCase{"lu", ProtocolKind::Hlrc},
                      MonotonicityCase{"lu", ProtocolKind::Sc},
                      MonotonicityCase{"ocean", ProtocolKind::Hlrc},
                      MonotonicityCase{"water-nsq", ProtocolKind::Hlrc},
                      MonotonicityCase{"volrend", ProtocolKind::Sc}),
    [](const ::testing::TestParamInfo<MonotonicityCase> &info) {
        std::string name = info.param.app;
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name + "_" + protocolKindName(info.param.kind);
    });

} // namespace
} // namespace swsm
