/**
 * @file
 * Schedule-fuzzer smoke test (ctest label: fuzz-smoke).
 *
 * Sweeps the litmus suite over many seeded timing configurations per
 * protocol. Every failure message carries the seed and the exact
 * replay command, so a red run here is immediately reproducible with
 *
 *   test_litmus --replay-seed=N --replay-protocol=<p>
 *
 * The seed count defaults to 50 per protocol and can be bounded (CI)
 * or raised (soak runs) with the SWSM_FUZZ_SEEDS environment variable.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "check/fuzz.hh"

namespace swsm
{
namespace
{

int
seedCount()
{
    const char *env = std::getenv("SWSM_FUZZ_SEEDS");
    if (env) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0 && v <= 1000000)
            return static_cast<int>(v);
    }
    return 50;
}

void
fuzzProtocol(ProtocolKind kind)
{
    check::FuzzOptions opts;
    opts.protocol = kind;
    opts.baseSeed = 1;
    opts.numSeeds = seedCount();
    for (const check::FuzzFailure &f : check::fuzz(opts)) {
        ADD_FAILURE() << protocolKindName(kind) << " seed " << f.seed
                      << " test " << f.test << ": " << f.detail
                      << "\n  replay: test_litmus --replay-seed="
                      << f.seed << " --replay-protocol="
                      << protocolKindName(kind);
    }
}

TEST(FuzzSmoke, ScSeeds) { fuzzProtocol(ProtocolKind::Sc); }

TEST(FuzzSmoke, HlrcSeeds) { fuzzProtocol(ProtocolKind::Hlrc); }

TEST(FuzzSmoke, MutationsAreCaughtUnderFuzzing)
{
    // The fuzzer must catch each injected protocol mutation within a
    // handful of seeds — otherwise its schedules have no teeth.
    check::FuzzOptions broken_hlrc;
    broken_hlrc.protocol = ProtocolKind::Hlrc;
    broken_hlrc.numSeeds = 3;
    broken_hlrc.faults.dropDiffApply = true;
    EXPECT_FALSE(check::fuzz(broken_hlrc).empty());

    check::FuzzOptions broken_sc;
    broken_sc.protocol = ProtocolKind::Sc;
    broken_sc.numSeeds = 3;
    broken_sc.faults.skipScInvalidate = true;
    EXPECT_FALSE(check::fuzz(broken_sc).empty());
}

} // namespace
} // namespace swsm
