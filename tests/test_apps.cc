/**
 * @file
 * End-to-end application tests: every application version runs at the
 * Tiny size under every protocol and must produce numerically correct
 * output (the protocols move real bytes, so verification exercises the
 * full coherence machinery).
 */

#include <gtest/gtest.h>

#include "apps/app_registry.hh"
#include "harness/experiment.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

struct AppCase
{
    const char *app;
    ProtocolKind protocol;
    int procs;
};

void
PrintTo(const AppCase &c, std::ostream *os)
{
    *os << c.app << "/" << protocolKindName(c.protocol) << "/p"
        << c.procs;
}

class AppVerification : public ::testing::TestWithParam<AppCase>
{
};

TEST_P(AppVerification, ProducesCorrectOutput)
{
    const AppCase &c = GetParam();
    const AppInfo &app = findApp(c.app);

    ExperimentConfig cfg;
    cfg.protocol = c.protocol;
    cfg.numProcs = c.procs;
    cfg.blockBytes = app.scBlockBytes;

    const ExperimentResult r =
        runExperiment(app.factory, SizeClass::Tiny, cfg, 1);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.parallelCycles, 0u);
}

std::vector<AppCase>
allCases()
{
    std::vector<AppCase> cases;
    for (const AppInfo &app : appRegistry()) {
        for (auto kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc, ProtocolKind::Ideal})
            cases.push_back({app.name.c_str(), kind, 8});
        // Uneven processor counts exercise remainder partitioning.
        cases.push_back({app.name.c_str(), ProtocolKind::Hlrc, 3});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppVerification, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<AppCase> &info) {
        std::string name = info.param.app;
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name + "_" +
               std::string(protocolKindName(info.param.protocol)) + "_p" +
               std::to_string(info.param.procs);
    });

TEST(AppRegistry, HasAllPaperApplications)
{
    const auto &apps = appRegistry();
    EXPECT_EQ(apps.size(), 13u); // 9 originals + 4 restructured
    int restructured = 0;
    for (const auto &app : apps) {
        EXPECT_TRUE(app.factory != nullptr);
        if (app.restructured) {
            ++restructured;
            EXPECT_FALSE(app.originalOf.empty());
            EXPECT_NO_THROW(findApp(app.originalOf));
        }
    }
    EXPECT_EQ(restructured, 4);
}

TEST(AppRegistry, ScGranularitiesFollowThePaper)
{
    // "6[4] bytes in all other cases than the regular applications:
    // FFT, LU and Ocean [coarse]".
    EXPECT_EQ(findApp("fft").scBlockBytes, 4096u);
    EXPECT_EQ(findApp("lu").scBlockBytes, 2048u);
    EXPECT_EQ(findApp("ocean").scBlockBytes, 1024u);
    EXPECT_EQ(findApp("radix").scBlockBytes, 64u);
    EXPECT_EQ(findApp("barnes").scBlockBytes, 64u);
}

TEST(AppRegistry, UnknownAppIsFatal)
{
    EXPECT_THROW(findApp("no-such-app"), FatalError);
}

TEST(AppDeterminism, SameSeedSameResult)
{
    const AppInfo &app = findApp("radix");
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::Hlrc;
    cfg.numProcs = 4;
    const auto r1 = runExperiment(app.factory, SizeClass::Tiny, cfg, 1);
    const auto r2 = runExperiment(app.factory, SizeClass::Tiny, cfg, 1);
    EXPECT_EQ(r1.parallelCycles, r2.parallelCycles);
    EXPECT_EQ(r1.stats.protoMsgs, r2.stats.protoMsgs);
}

} // namespace
} // namespace swsm
