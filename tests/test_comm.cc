/**
 * @file
 * Message-layer tests with a mock handler sink: request vs. data
 * semantics, handling cost, interrupt dispatch, and an analytic
 * validation of the end-to-end message latency model across the
 * paper's communication parameter sets (the simulator-validation step
 * of the paper's methodology, §3.1, done against closed-form LogGP-
 * style expectations instead of a physical cluster).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/msg_layer.hh"
#include "sim/event_queue.hh"

namespace swsm
{
namespace
{

/** Records posted work instead of running a processor. */
class MockSink : public HandlerSink
{
  public:
    struct Posted
    {
        Cycles ready;
        HandlerFn fn;
    };

    void
    postHandler(Cycles ready, HandlerFn fn) override
    {
        handlers.push_back(Posted{ready, std::move(fn)});
    }

    void
    postData(Cycles delivered, DataFn fn) override
    {
        dataTimes.push_back(delivered);
        fn(delivered);
    }

    std::vector<Posted> handlers;
    std::vector<Cycles> dataTimes;
};

/** Minimal NodeEnv for executing captured handlers in tests. */
class MockEnv : public NodeEnv
{
  public:
    explicit MockEnv(Cycles start) : now_(start) {}

    NodeId node() const override { return 0; }
    Cycles now() const override { return now_; }

    void
    charge(Cycles cycles, TimeBucket bucket) override
    {
        now_ += cycles;
        charged[static_cast<int>(bucket)] += cycles;
    }

    void
    sendRequest(NodeId, std::uint32_t, HandlerFn, TimeBucket) override
    {
    }
    void sendData(NodeId, std::uint32_t, DataFn, TimeBucket) override {}
    void chargeCacheRange(GlobalAddr, std::uint64_t, bool,
                          TimeBucket) override
    {
    }
    void invalidateCacheRange(GlobalAddr, std::uint64_t) override {}

    Cycles now_;
    std::array<Cycles, numTimeBuckets> charged{};
};

struct CommFixture
{
    explicit CommFixture(const CommParams &params)
        : net(eq, 2, params), msg(net)
    {
        msg.attachSink(0, &sink0);
        msg.attachSink(1, &sink1);
    }

    EventQueue eq;
    Network net;
    MsgLayer msg;
    MockSink sink0;
    MockSink sink1;
};

TEST(MsgLayer, RequestWaitsHandlingCostThenPosts)
{
    CommParams p = CommParams::best();
    p.handlingCost = 123;
    CommFixture f(p);
    bool ran = false;
    f.msg.sendRequest(0, 1, 8, 0, [&](NodeEnv &) { ran = true; });
    f.eq.run();
    ASSERT_EQ(f.sink1.handlers.size(), 1u);
    // ready = delivery + handling cost; with best params, delivery is
    // wire + bandwidth time only.
    EXPECT_GT(f.sink1.handlers[0].ready, 123u);
    EXPECT_FALSE(ran); // the mock does not execute handlers
    MockEnv env(f.sink1.handlers[0].ready);
    f.sink1.handlers[0].fn(env);
    EXPECT_TRUE(ran);
}

TEST(MsgLayer, DataBypassesHandlers)
{
    CommFixture f(CommParams::best());
    Cycles delivered = 0;
    f.msg.sendData(0, 1, 64, 0, [&](Cycles t) { delivered = t; });
    f.eq.run();
    EXPECT_TRUE(f.sink1.handlers.empty());
    ASSERT_EQ(f.sink1.dataTimes.size(), 1u);
    EXPECT_EQ(f.sink1.dataTimes[0], delivered);
}

TEST(MsgLayer, InterruptModeChargesDispatchCost)
{
    CommParams p = CommParams::best();
    p.interruptCost = 777;
    CommFixture f(p);
    f.msg.sendRequest(0, 1, 8, 0, [](NodeEnv &env) {
        env.charge(10, TimeBucket::ProtoHandler);
    });
    f.eq.run();
    ASSERT_EQ(f.sink1.handlers.size(), 1u);
    MockEnv env(0);
    f.sink1.handlers[0].fn(env);
    EXPECT_EQ(env.charged[static_cast<int>(TimeBucket::ProtoHandler)],
              787u);
}

TEST(MsgLayer, CountsByKind)
{
    CommFixture f(CommParams::best());
    f.msg.sendRequest(0, 1, 8, 0, [](NodeEnv &) {});
    f.msg.sendData(0, 1, 8, 0, [](Cycles) {});
    f.msg.sendData(1, 0, 8, 0, [](Cycles) {});
    f.eq.run();
    EXPECT_EQ(f.msg.requestsSent().value(), 1u);
    EXPECT_EQ(f.msg.dataSent().value(), 2u);
}

// ------------------------------------------------ latency validation

struct LatencyCase
{
    char set;
    std::uint32_t payload;
};

void
PrintTo(const LatencyCase &c, std::ostream *os)
{
    *os << c.set << "/" << c.payload << "B";
}

/**
 * Validation: the uncontended one-way latency of a message must match
 * the closed-form sum of the pipeline stages for every parameter set
 * and message size up to one packet.
 */
class MessageLatency : public ::testing::TestWithParam<LatencyCase>
{
};

TEST_P(MessageLatency, MatchesClosedForm)
{
    const CommParams p = CommParams::fromName(GetParam().set);
    const std::uint32_t bytes = msgHeaderBytes + GetParam().payload;
    ASSERT_LE(bytes, p.maxPacketBytes);

    CommFixture f(p);
    Cycles delivered = 0;
    f.msg.sendData(0, 1, GetParam().payload, 0,
                   [&](Cycles t) { delivered = t; });
    f.eq.run();

    const auto xfer = [](std::uint32_t n, double bw) {
        return static_cast<Cycles>(std::ceil(n / bw));
    };
    const Cycles expect = xfer(bytes, p.ioBusBytesPerCycle) +
        p.niOccupancyPerPacket + p.linkLatency +
        xfer(bytes, p.linkBytesPerCycle) + p.niOccupancyPerPacket +
        xfer(bytes, p.ioBusBytesPerCycle);
    EXPECT_EQ(delivered, expect);
}

std::vector<LatencyCase>
latencyCases()
{
    std::vector<LatencyCase> cases;
    for (const char set : {'A', 'H', 'B', 'W', 'X'})
        for (const std::uint32_t payload : {0u, 8u, 64u, 1024u, 4000u})
            cases.push_back({set, payload});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MessageLatency, ::testing::ValuesIn(latencyCases()),
    [](const ::testing::TestParamInfo<LatencyCase> &info) {
        return std::string(1, info.param.set) + "_" +
               std::to_string(info.param.payload) + "B";
    });

} // namespace
} // namespace swsm
