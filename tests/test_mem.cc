/**
 * @file
 * Unit tests for the two-level cache timing model.
 */

#include <gtest/gtest.h>

#include "mem/cache_model.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

MemoryParams
smallParams()
{
    MemoryParams p;
    p.l1Bytes = 1024;  // 16 sets x 2 ways x 32 B
    p.l1Assoc = 2;
    p.lineBytes = 32;
    p.l2Bytes = 8192;  // 64 sets x 4 ways
    p.l2Assoc = 4;
    p.l2HitCycles = 10;
    p.memCycles = 60;
    return p;
}

TEST(CacheModel, ColdMissThenHit)
{
    CacheModel c(smallParams());
    EXPECT_EQ(c.access(0x1000, false), 60u); // cold: memory
    EXPECT_EQ(c.access(0x1000, false), 0u);  // L1 hit
    EXPECT_EQ(c.access(0x1008, false), 0u);  // same line
}

TEST(CacheModel, L2HitAfterL1Eviction)
{
    const MemoryParams p = smallParams();
    CacheModel c(p);
    // Fill one L1 set with 3 distinct lines mapping to it (assoc 2).
    const std::uint64_t set_stride = p.l1Bytes / p.l1Assoc; // 512
    c.access(0, false);
    c.access(set_stride, false);
    c.access(2 * set_stride, false); // evicts line 0 from L1
    EXPECT_EQ(c.access(0, false), p.l2HitCycles); // still in L2
}

TEST(CacheModel, LruKeepsRecentlyUsed)
{
    const MemoryParams p = smallParams();
    CacheModel c(p);
    const std::uint64_t s = p.l1Bytes / p.l1Assoc;
    c.access(0, false);
    c.access(s, false);
    c.access(0, false);      // refresh line 0
    c.access(2 * s, false);  // should evict line s, not 0
    EXPECT_EQ(c.access(0, false), 0u);
    EXPECT_NE(c.access(s, false), 0u);
}

TEST(CacheModel, AccessRangeWalksLines)
{
    const MemoryParams p = smallParams();
    CacheModel c(p);
    const Cycles cold = c.accessRange(0, 256, false); // 8 lines
    EXPECT_EQ(cold, 8 * p.memCycles);
    EXPECT_EQ(c.accessRange(0, 256, false), 0u); // all hits now
}

TEST(CacheModel, AccessRangeZeroBytes)
{
    CacheModel c(smallParams());
    EXPECT_EQ(c.accessRange(100, 0, false), 0u);
}

TEST(CacheModel, InvalidateRangeForcesMisses)
{
    const MemoryParams p = smallParams();
    CacheModel c(p);
    c.accessRange(0, 128, false);
    EXPECT_EQ(c.accessRange(0, 128, false), 0u);
    c.invalidateRange(0, 128);
    EXPECT_EQ(c.accessRange(0, 128, false), 4 * p.memCycles);
}

TEST(CacheModel, ResetDropsEverything)
{
    const MemoryParams p = smallParams();
    CacheModel c(p);
    c.access(0, false);
    c.reset();
    EXPECT_EQ(c.access(0, false), p.memCycles);
}

TEST(CacheModel, StatsCountHitsAndMisses)
{
    CacheModel c(smallParams());
    c.access(0, false);
    c.access(0, false);
    c.access(0, true);
    EXPECT_EQ(c.l1Misses().value(), 1u);
    EXPECT_EQ(c.l1Hits().value(), 2u);
    EXPECT_EQ(c.l2Misses().value(), 1u);
}

TEST(CacheModel, CapacityEvictionToMemory)
{
    const MemoryParams p = smallParams();
    CacheModel c(p);
    // Touch far more distinct lines than L2 capacity, then re-touch the
    // first: must be a full memory miss again.
    const std::uint64_t lines = (p.l2Bytes / p.lineBytes) * 4;
    for (std::uint64_t i = 0; i < lines; ++i)
        c.access(i * p.lineBytes, false);
    EXPECT_EQ(c.access(0, false), p.memCycles);
}

TEST(CacheModel, RejectsNonPowerOfTwoGeometry)
{
    MemoryParams p = smallParams();
    p.lineBytes = 48;
    EXPECT_THROW(CacheModel c(p), FatalError);
}

TEST(CacheModel, StreamFitsInL2ButNotL1)
{
    const MemoryParams p = smallParams();
    CacheModel c(p);
    // A 4 KB stream (128 lines) fits in the 8 KB L2 but not the 1 KB
    // L1; a sequential re-walk therefore hits L2 on every line (the L1
    // working set is always the 32 most recent lines, which the walk
    // itself keeps evicting ahead of reuse).
    c.accessRange(0, 4096, true);
    EXPECT_EQ(c.accessRange(0, 4096, false), 128 * p.l2HitCycles);
}

} // namespace
} // namespace swsm
