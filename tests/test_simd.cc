/**
 * @file
 * SIMD data-path correctness: every kernel in mem/simd.hh is checked
 * against a naive byte-loop reference at every supported dispatch
 * level, the runtime dispatcher is exercised (forced scalar, clamp of
 * unsupported requests), the 32-byte alignment contract of
 * mem/aligned.hh is verified, and — the property the vectorization
 * hangs on — whole simulations run bit-identically (same cycles, same
 * protocol/network/pool counters) whichever level the kernels dispatch
 * on, across protocols, kernels, geometries and fast-path modes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "machine/cluster.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "mem/aligned.hh"
#include "mem/simd.hh"
#include "proto/page_buffer_pool.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

/** Restore the ambient dispatch level on scope exit. */
struct ScopedLevel
{
    explicit ScopedLevel(simd::Level level)
        : prev_(simd::activeLevel())
    {
        simd::setLevel(level);
    }
    ~ScopedLevel() { simd::setLevel(prev_); }

  private:
    simd::Level prev_;
};

/** The levels this host can actually run. */
std::vector<simd::Level>
supportedLevels()
{
    std::vector<simd::Level> levels{simd::Level::Scalar};
    if (simd::avx2Supported())
        levels.push_back(simd::Level::Avx2);
    return levels;
}

std::uint64_t
xorshift(std::uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

// --------------------------------------------------------- Dispatcher

TEST(SimdDispatch, ForcedScalarSticks)
{
    const simd::Level prev = simd::activeLevel();
    EXPECT_EQ(simd::setLevel(simd::Level::Scalar), simd::Level::Scalar);
    EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
    simd::setLevel(prev);
    EXPECT_EQ(simd::activeLevel(), prev);
}

TEST(SimdDispatch, UnsupportedRequestClampsToScalar)
{
    const simd::Level prev = simd::activeLevel();
    const simd::Level got = simd::setLevel(simd::Level::Avx2);
    if (simd::avx2Supported())
        EXPECT_EQ(got, simd::Level::Avx2);
    else
        EXPECT_EQ(got, simd::Level::Scalar);
    EXPECT_EQ(simd::activeLevel(), got);
    simd::setLevel(prev);
}

TEST(SimdDispatch, LevelNames)
{
    EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx2), "avx2");
}

// ------------------------------------------------- Kernel correctness

/** Byte-loop diff reference: no SIMD, no word tricks. */
simd::DiffWords
naiveDiff(const std::uint8_t *cur, const std::uint8_t *twin,
          std::uint32_t bytes, std::uint32_t word0)
{
    simd::DiffWords out;
    for (std::uint32_t w = 0; w < bytes / 4; ++w) {
        if (std::memcmp(cur + w * 4, twin + w * 4, 4) != 0) {
            std::uint32_t value;
            std::memcpy(&value, cur + w * 4, 4);
            out.emplace_back(word0 + w, value);
        }
    }
    return out;
}

TEST(SimdKernels, DiffWordsMatchesNaiveAtEveryLevel)
{
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
    for (const simd::Level level : supportedLevels()) {
        ScopedLevel scoped(level);
        // Sizes straddle the 32-byte vector width: sub-vector, exact
        // multiples, and ragged tails.
        for (std::uint32_t bytes : {4u, 28u, 32u, 64u, 100u, 4096u}) {
            AlignedBytes twin(bytes), cur(bytes);
            for (std::uint32_t i = 0; i < bytes; ++i)
                twin[i] = static_cast<std::uint8_t>(xorshift(seed));
            cur.assign(twin.begin(), twin.end());
            // Flip a pseudo-random subset of words, including runs.
            for (std::uint32_t w = 0; w < bytes / 4; ++w) {
                if (xorshift(seed) % 3 == 0)
                    cur[w * 4 + xorshift(seed) % 4] ^= 0x5a;
            }
            const std::uint32_t word0 =
                static_cast<std::uint32_t>(xorshift(seed) % 1000);
            simd::DiffWords got;
            simd::diffWords(cur.data(), twin.data(), bytes, word0, got);
            EXPECT_EQ(got, naiveDiff(cur.data(), twin.data(), bytes,
                                     word0))
                << simd::levelName(level) << " bytes=" << bytes;
        }
    }
}

TEST(SimdKernels, DiffWordsAllSameAndAllDifferent)
{
    for (const simd::Level level : supportedLevels()) {
        ScopedLevel scoped(level);
        AlignedBytes a(256, 0x11), b(256, 0x11);
        simd::DiffWords got;
        simd::diffWords(a.data(), b.data(), 256, 0, got);
        EXPECT_TRUE(got.empty()) << simd::levelName(level);
        b.assign(256, 0x22);
        got.clear();
        simd::diffWords(a.data(), b.data(), 256, 7, got);
        ASSERT_EQ(got.size(), 64u) << simd::levelName(level);
        EXPECT_EQ(got.front().first, 7u);
        EXPECT_EQ(got.back().first, 7u + 63u);
        EXPECT_EQ(got.front().second, 0x11111111u);
    }
}

TEST(SimdKernels, RangesEqualMatchesMemcmpAtEveryLevel)
{
    std::uint64_t seed = 0xdeadbeefcafef00dULL;
    for (const simd::Level level : supportedLevels()) {
        ScopedLevel scoped(level);
        for (std::uint32_t bytes : {0u, 4u, 31u, 32u, 33u, 96u, 4096u}) {
            AlignedBytes a(bytes), b(bytes);
            for (std::uint32_t i = 0; i < bytes; ++i)
                a[i] = static_cast<std::uint8_t>(xorshift(seed));
            b.assign(a.begin(), a.end());
            EXPECT_TRUE(simd::rangesEqual(a.data(), b.data(), bytes))
                << simd::levelName(level) << " bytes=" << bytes;
            if (bytes == 0)
                continue;
            // A mismatch in any position — first, last, mid — trips it.
            for (std::uint32_t pos : {0u, bytes / 2, bytes - 1}) {
                b[pos] ^= 1;
                EXPECT_FALSE(
                    simd::rangesEqual(a.data(), b.data(), bytes))
                    << simd::levelName(level) << " bytes=" << bytes
                    << " pos=" << pos;
                b[pos] ^= 1;
            }
        }
    }
}

TEST(SimdKernels, CopyBytesCopiesExactlyAtEveryLevel)
{
    std::uint64_t seed = 0x123456789abcdefULL;
    for (const simd::Level level : supportedLevels()) {
        ScopedLevel scoped(level);
        for (std::uint32_t bytes : {0u, 1u, 17u, 32u, 63u, 4096u}) {
            AlignedBytes src(bytes), dst(bytes, 0xee);
            for (std::uint32_t i = 0; i < bytes; ++i)
                src[i] = static_cast<std::uint8_t>(xorshift(seed));
            simd::copyBytes(dst.data(), src.data(), bytes);
            EXPECT_EQ(dst, src)
                << simd::levelName(level) << " bytes=" << bytes;
        }
    }
}

TEST(SimdKernels, ApplyWordsMatchesNaiveStoresAtEveryLevel)
{
    std::uint64_t seed = 0xfeedfacefeedfaceULL;
    for (const simd::Level level : supportedLevels()) {
        ScopedLevel scoped(level);
        AlignedBytes page(4096), want(4096);
        for (auto &byte : page)
            byte = static_cast<std::uint8_t>(xorshift(seed));
        want.assign(page.begin(), page.end());
        // The common diff shape: a long consecutive run (vectorized
        // burst), short runs around the 8-word threshold, and isolated
        // scattered words.
        simd::DiffWords words;
        auto add = [&](std::uint32_t w) {
            const std::uint32_t value =
                static_cast<std::uint32_t>(xorshift(seed));
            words.emplace_back(w, value);
            std::memcpy(want.data() + w * 4, &value, 4);
        };
        for (std::uint32_t w = 10; w < 50; ++w)
            add(w); // 40-word run
        for (std::uint32_t w = 100; w < 107; ++w)
            add(w); // 7-word run (below the AVX2 burst threshold)
        for (std::uint32_t w = 200; w < 208; ++w)
            add(w); // exactly 8
        for (std::uint32_t i = 0; i < 16; ++i)
            add(300 + i * 11); // singles
        simd::applyWords(page.data(), words.data(), words.size());
        EXPECT_EQ(page, want) << simd::levelName(level);
    }
}

TEST(SimdKernels, ApplyWordsEmptyIsNoOp)
{
    for (const simd::Level level : supportedLevels()) {
        ScopedLevel scoped(level);
        AlignedBytes page(64, 0x42);
        simd::applyWords(page.data(), nullptr, 0);
        EXPECT_EQ(page, AlignedBytes(64, 0x42));
    }
}

// -------------------------------------------------- Alignment contract

TEST(SimdAlignment, AlignedBytesStorageIs32ByteAligned)
{
    for (std::size_t n : {1u, 31u, 32u, 100u, 4096u, 65536u}) {
        AlignedBytes b(n);
        EXPECT_TRUE(simdAligned(b.data())) << "size " << n;
    }
}

TEST(SimdAlignment, PoolPagesKeepAlignmentAcrossReuse)
{
    PageBufferPool pool;
    PageBufferPool::Bytes a = pool.acquirePage();
    a.resize(4096);
    EXPECT_TRUE(simdAligned(a.data()));
    pool.releasePage(std::move(a));
    PageBufferPool::Bytes b = pool.acquirePage();
    b.resize(4096);
    EXPECT_TRUE(simdAligned(b.data()));
}

TEST(SimdAlignment, NoticeArenaStableAddresses)
{
    NoticeArena arena;
    EXPECT_EQ(arena.alloc(0), nullptr);
    PageId *first = arena.alloc(3);
    first[0] = 1;
    first[1] = 2;
    first[2] = 3;
    // Allocate enough to force at least one more slab; the first list
    // must not move.
    std::vector<PageId *> lists;
    for (int i = 0; i < 3000; ++i)
        lists.push_back(arena.alloc(5));
    EXPECT_EQ(first[0], 1u);
    EXPECT_EQ(first[1], 2u);
    EXPECT_EQ(first[2], 3u);
    EXPECT_GE(arena.slabAllocs(), 2u);
    EXPECT_GT(arena.slabReuses(), 0u);
}

// ------------------------------------------- Whole-run equivalence

/** Everything a run produces that the SIMD level must not change. */
struct RunResult
{
    Cycles total = 0;
    std::vector<Cycles> finish;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/** A kernel sets up shared state on the cluster, then returns the
 *  SPMD body. */
using Kernel =
    std::function<std::function<void(Thread &)>(Cluster &)>;

RunResult
runKernel(ProtocolKind kind, simd::Level level, bool fast_path,
          std::uint32_t page_bytes, std::uint32_t block_bytes,
          const Kernel &kernel)
{
    ScopedLevel scoped(level);
    MachineParams mp;
    mp.numProcs = 4;
    mp.protocol = kind;
    mp.pageBytes = page_bytes;
    mp.blockBytes = block_bytes;
    mp.fastPath = fast_path;
    Cluster c(mp);
    auto body = kernel(c);
    c.run(body);

    RunResult r;
    r.total = c.stats().totalCycles;
    r.finish = c.stats().finishTimes;
    for (const auto &[name, value] : c.stats().metrics.counters) {
        // machine.fastpath_* and mem.simd_* are host telemetry and
        // legitimately vary across host modes; everything else —
        // including proto.pool_* — must be bit-identical.
        if (name.rfind("machine.fastpath_", 0) == 0 ||
            name.rfind("mem.simd_", 0) == 0)
            continue;
        r.counters.emplace_back(name, value);
    }
    return r;
}

void
expectEquivalent(ProtocolKind kind, std::uint32_t page_bytes,
                 std::uint32_t block_bytes, const Kernel &kernel)
{
    const simd::Level best = supportedLevels().back();
    const RunResult ref = runKernel(kind, best, true, page_bytes,
                                    block_bytes, kernel);
    const struct
    {
        simd::Level level;
        bool fastPath;
    } arms[] = {
        {simd::Level::Scalar, true},
        {best, false},
        {simd::Level::Scalar, false},
    };
    for (const auto &arm : arms) {
        const RunResult got = runKernel(kind, arm.level, arm.fastPath,
                                        page_bytes, block_bytes, kernel);
        EXPECT_EQ(ref.total, got.total)
            << simd::levelName(arm.level) << " fastpath="
            << arm.fastPath;
        EXPECT_EQ(ref.finish, got.finish);
        ASSERT_EQ(ref.counters.size(), got.counters.size());
        for (std::size_t i = 0; i < ref.counters.size(); ++i) {
            EXPECT_EQ(ref.counters[i], got.counters[i])
                << "counter " << ref.counters[i].first << " ("
                << simd::levelName(arm.level) << " fastpath="
                << arm.fastPath << ")";
        }
    }
}

/** Lock-serialized read-modify-writes plus private slots: exercises
 *  single-reference hits, twins, diffs and notice invalidations. */
Kernel
lockCounterKernel()
{
    return [](Cluster &c) {
        const LockId lock = c.allocLock();
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint32_t>>(
            SharedArray<std::uint32_t>::homedAt(c, 64, 0));
        for (int i = 0; i < 64; ++i)
            a->init(c, i, 0);
        return [lock, bar, a](Thread &t) {
            for (int round = 0; round < 4; ++round) {
                t.acquire(lock);
                a->put(t, 0, a->get(t, 0) + 1);
                a->put(t, 1 + t.id(), a->get(t, 1 + t.id()) + 3);
                t.release(lock);
                t.compute(57);
            }
            t.barrier(bar);
            std::uint32_t sum = 0;
            for (int i = 0; i < 64; ++i)
                sum += a->get(t, i);
            if (sum != 4u * t.nprocs() + 12u * t.nprocs())
                SWSM_PANIC("lock counter kernel read %u", sum);
            t.barrier(bar);
        };
    };
}

/** Barrier epochs of falsely-shared writes: exercises early flushes,
 *  multi-writer diffs and repeated twin create/discard cycles. */
Kernel
falseSharingKernel()
{
    return [](Cluster &c) {
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint64_t>>(
            SharedArray<std::uint64_t>::homedAt(c, 128, 1));
        for (int i = 0; i < 128; ++i)
            a->init(c, i, 0);
        return [bar, a](Thread &t) {
            for (int epoch = 1; epoch <= 3; ++epoch) {
                for (int j = 0; j < 8; ++j)
                    a->put(t, t.id() * 8 + j,
                           static_cast<std::uint64_t>(epoch * 100 +
                                                      t.id() * 8 + j));
                t.barrier(bar);
                std::uint64_t sum = 0;
                for (int i = 0; i < 8 * t.nprocs(); ++i)
                    sum += a->get(t, i);
                (void)sum;
                t.barrier(bar);
            }
        };
    };
}

/** Unaligned bulk copies crossing page and block boundaries:
 *  exercises page fetches (pooled snapshot copies) and their diffs. */
Kernel
bulkRangeKernel()
{
    return [](Cluster &c) {
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint8_t>>(
            SharedArray<std::uint8_t>::homedAt(c, 3 * 4096, 0));
        for (int i = 0; i < 3 * 4096; ++i)
            a->init(c, i, static_cast<std::uint8_t>(i));
        return [bar, a](Thread &t) {
            std::vector<std::uint8_t> buf(2500);
            const GlobalAddr base = a->base() + 17 + t.id() * 2600;
            t.readBytes(base, buf.data(), buf.size());
            for (auto &byte : buf)
                byte = static_cast<std::uint8_t>(byte + 1 + t.id());
            t.barrier(bar);
            if (t.id() == 0)
                t.writeBytes(a->base() + 100, buf.data(), buf.size());
            t.barrier(bar);
            std::vector<std::uint8_t> check(300);
            t.readBytes(a->base() + 4000, check.data(), check.size());
            t.barrier(bar);
        };
    };
}

struct Geometry
{
    std::uint32_t pageBytes;
    std::uint32_t blockBytes;
};

const Geometry geometries[] = {{4096, 64}, {1024, 32}};

TEST(SimdEquivalence, HlrcBitIdenticalAcrossLevels)
{
    for (const Geometry &g : geometries) {
        expectEquivalent(ProtocolKind::Hlrc, g.pageBytes, g.blockBytes,
                         lockCounterKernel());
        expectEquivalent(ProtocolKind::Hlrc, g.pageBytes, g.blockBytes,
                         falseSharingKernel());
        expectEquivalent(ProtocolKind::Hlrc, g.pageBytes, g.blockBytes,
                         bulkRangeKernel());
    }
}

TEST(SimdEquivalence, ScBitIdenticalAcrossLevels)
{
    for (const Geometry &g : geometries) {
        expectEquivalent(ProtocolKind::Sc, g.pageBytes, g.blockBytes,
                         lockCounterKernel());
        expectEquivalent(ProtocolKind::Sc, g.pageBytes, g.blockBytes,
                         falseSharingKernel());
        expectEquivalent(ProtocolKind::Sc, g.pageBytes, g.blockBytes,
                         bulkRangeKernel());
    }
}

TEST(SimdEquivalence, IdealBitIdenticalAcrossLevels)
{
    for (const Geometry &g : geometries) {
        expectEquivalent(ProtocolKind::Ideal, g.pageBytes, g.blockBytes,
                         lockCounterKernel());
        expectEquivalent(ProtocolKind::Ideal, g.pageBytes, g.blockBytes,
                         falseSharingKernel());
        expectEquivalent(ProtocolKind::Ideal, g.pageBytes, g.blockBytes,
                         bulkRangeKernel());
    }
}

// --------------------------------------------------- Pool integration

TEST(SimdPooling, HlrcRunReportsPoolAndKernelMetrics)
{
    // A diff-heavy HLRC run must show pool activity and SIMD kernel
    // traffic in its metrics snapshot, and reuse must dominate allocs
    // once warm.
    MachineParams mp;
    mp.numProcs = 4;
    mp.protocol = ProtocolKind::Hlrc;
    Cluster c(mp);
    auto body = falseSharingKernel()(c);
    c.run(body);

    std::uint64_t pageAllocs = 0, pageReuses = 0;
    std::uint64_t twinCalls = 0, applyWords = 0, slabs = 0;
    for (const auto &[name, value] : c.stats().metrics.counters) {
        if (name == "proto.pool_page_allocs")
            pageAllocs = value;
        else if (name == "proto.pool_page_reuses")
            pageReuses = value;
        else if (name == "mem.simd_twin_copy_calls")
            twinCalls = value;
        else if (name == "mem.simd_apply_words")
            applyWords = value;
        else if (name == "proto.pool_notice_slabs")
            slabs = value;
    }
    EXPECT_GT(pageAllocs, 0u);
    EXPECT_GT(pageReuses, 0u);
    EXPECT_GT(twinCalls, 0u);
    EXPECT_GT(applyWords, 0u);
    EXPECT_GT(slabs, 0u);
}

} // namespace
} // namespace swsm
