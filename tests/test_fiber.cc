/**
 * @file
 * Unit tests for the cooperative fiber runtime.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fiber/fiber.hh"

namespace swsm
{
namespace
{

TEST(Fiber, RunsBodyToCompletion)
{
    bool ran = false;
    Fiber f([&] { ran = true; });
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    std::vector<int> order;
    Fiber f([&] {
        order.push_back(1);
        Fiber::yield();
        order.push_back(3);
    });
    f.resume();
    order.push_back(2);
    f.resume();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, ManyYields)
{
    int count = 0;
    Fiber f([&] {
        for (int i = 0; i < 100; ++i) {
            ++count;
            Fiber::yield();
        }
    });
    for (int i = 0; i < 100; ++i)
        f.resume();
    EXPECT_EQ(count, 100);
    EXPECT_FALSE(f.finished());
    f.resume(); // body loop exits
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksRunningFiber)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber *seen = nullptr;
    Fiber f([&] { seen = Fiber::current(); });
    f.resume();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, NestedFibers)
{
    std::vector<int> order;
    Fiber inner([&] {
        order.push_back(2);
        Fiber::yield();
        order.push_back(4);
    });
    Fiber outer([&] {
        order.push_back(1);
        inner.resume();
        order.push_back(3);
        inner.resume();
        order.push_back(5);
    });
    outer.resume();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_TRUE(inner.finished());
    EXPECT_TRUE(outer.finished());
}

TEST(Fiber, DeepStackUsage)
{
    // Recursion exercising a healthy chunk of the default stack.
    std::function<int(int)> rec = [&](int d) -> int {
        volatile char pad[512];
        pad[0] = static_cast<char>(d);
        return d == 0 ? pad[0] : rec(d - 1) + 1;
    };
    int result = -1;
    Fiber f([&] { result = rec(200); });
    f.resume();
    EXPECT_EQ(result, 200);
}

TEST(Fiber, ResumeFinishedPanics)
{
    Fiber f([] {});
    f.resume();
    EXPECT_DEATH(f.resume(), "finished");
}

TEST(Fiber, YieldOutsideFiberPanics)
{
    EXPECT_DEATH(Fiber::yield(), "outside");
}

TEST(Fiber, InterleavedPairCooperates)
{
    std::vector<int> order;
    Fiber a([&] {
        for (int i = 0; i < 3; ++i) {
            order.push_back(10 + i);
            Fiber::yield();
        }
    });
    Fiber b([&] {
        for (int i = 0; i < 3; ++i) {
            order.push_back(20 + i);
            Fiber::yield();
        }
    });
    for (int i = 0; i < 3; ++i) {
        a.resume();
        b.resume();
    }
    EXPECT_EQ(order, (std::vector<int>{10, 20, 11, 21, 12, 22}));
}

} // namespace
} // namespace swsm
