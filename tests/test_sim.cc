/**
 * @file
 * Unit tests for the discrete-event kernel, RNG and statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace swsm
{
namespace
{

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] {
            ++fired;
            eq.scheduleAfter(3, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_DEATH(eq.schedule(5, [] {}), "past");
    });
    eq.run();
}

TEST(EventQueue, RunWithLimitStops)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    EXPECT_EQ(eq.run(4u), 4u);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, NowAdvancesMonotonically)
{
    EventQueue eq;
    Cycles last = 0;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<Cycles>((i * 37) % 50), [&, i] {
            EXPECT_GE(eq.now(), last);
            last = eq.now();
        });
    eq.run();
}

TEST(EventFn, SupportsMoveOnlyCallables)
{
    // std::function cannot hold this; EventFn must.
    auto box = std::make_unique<int>(42);
    int seen = 0;
    EventFn fn([b = std::move(box), &seen] { seen = *b; });
    EXPECT_TRUE(static_cast<bool>(fn));
    fn();
    EXPECT_EQ(seen, 42);
}

TEST(EventFn, MoveTransfersOwnership)
{
    int calls = 0;
    EventFn a([&calls] { ++calls; });
    EventFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);

    EventFn c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(calls, 2);
}

TEST(EventFn, LargeCapturesFallBackToHeap)
{
    // A capture well past inlineBytes must still work (heap fallback)
    // and destroy its state exactly once.
    struct Big
    {
        unsigned char pad[2 * EventFn::inlineBytes] = {};
        std::shared_ptr<int> counter;
    };
    static_assert(sizeof(Big) > EventFn::inlineBytes);

    auto counter = std::make_shared<int>(0);
    {
        Big big;
        big.counter = counter;
        big.pad[0] = 7;
        EventFn fn([big] { *big.counter += big.pad[0]; });
        EXPECT_EQ(counter.use_count(), 3); // local, Big copy in lambda
        EventFn moved(std::move(fn));
        moved();
    }
    EXPECT_EQ(*counter, 7);
    EXPECT_EQ(counter.use_count(), 1); // lambda state destroyed
}

TEST(EventFn, InlineCapturesDoNotLeak)
{
    auto counter = std::make_shared<int>(0);
    {
        EventFn fn([counter] { ++*counter; });
        EXPECT_EQ(counter.use_count(), 2);
        EventFn moved(std::move(fn));
        EXPECT_EQ(counter.use_count(), 2); // relocated, not copied
        moved();
    }
    EXPECT_EQ(*counter, 1);
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(EventQueue, AcceptsMoveOnlyCallbacks)
{
    EventQueue eq;
    auto payload = std::make_unique<int>(9);
    int got = 0;
    eq.schedule(1, [p = std::move(payload), &got] { got = *p; });
    eq.run();
    EXPECT_EQ(got, 9);
}

TEST(EventQueue, ReserveDoesNotDisturbOrdering)
{
    EventQueue eq;
    eq.reserve(1024);
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        eq.schedule(static_cast<Cycles>((i * 37) % 17),
                    [&order, i] { order.push_back(i); });
    eq.run();
    std::vector<int> expect;
    for (int i = 0; i < 64; ++i)
        expect.push_back(i);
    std::stable_sort(expect.begin(), expect.end(), [](int a, int b) {
        return (a * 37) % 17 < (b * 37) % 17;
    });
    EXPECT_EQ(order, expect);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, CounterAccumulates)
{
    Counter c;
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AccumulatorTracksMoments)
{
    Accumulator a;
    a.sample(1.0);
    a.sample(3.0);
    a.sample(2.0);
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, EmptyAccumulatorIsZero)
{
    Accumulator a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Stats, HistogramBucketsPowerOfTwo)
{
    Histogram h(8);
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(100);
    EXPECT_EQ(h.totalSamples(), 5u);
    EXPECT_EQ(h.bucketCount(0), 1u); // 0
    EXPECT_EQ(h.bucketCount(1), 1u); // 1
    EXPECT_EQ(h.bucketCount(2), 2u); // 2..3
}

TEST(Stats, GroupDumpContainsEntries)
{
    Counter c;
    c.inc(5);
    Accumulator a;
    a.sample(2.0);
    StatGroup g("net");
    g.addCounter("msgs", &c);
    g.addAccumulator("delay", &a);
    std::ostringstream os;
    g.dump(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("net.msgs 5"), std::string::npos);
    EXPECT_NE(s.find("net.delay.mean 2"), std::string::npos);
}

TEST(TimeBuckets, NamesAndProtoClassification)
{
    EXPECT_STREQ(timeBucketName(TimeBucket::Busy), "busy");
    EXPECT_STREQ(timeBucketName(TimeBucket::ProtoDiff), "proto_diff");
    EXPECT_FALSE(isProtoBucket(TimeBucket::Busy));
    EXPECT_FALSE(isProtoBucket(TimeBucket::BarrierWait));
    EXPECT_TRUE(isProtoBucket(TimeBucket::ProtoHandler));
    EXPECT_TRUE(isProtoBucket(TimeBucket::ProtoOther));
}

} // namespace
} // namespace swsm
