/**
 * @file
 * Determinism guarantees of the simulator and the parallel sweep
 * engine: repeated serial runs of the same experiment are bitwise
 * identical, and a parallel sweep produces exactly the same results as
 * the serial sweep over the same grid.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/parallel_sweep.hh"

namespace swsm
{
namespace
{

SweepOptions
quickOptions(int jobs)
{
    SweepOptions opts;
    opts.size = SizeClass::Tiny;
    opts.numProcs = 8;
    opts.apps = {"fft", "lu"};
    opts.jobs = jobs;
    return opts;
}

TEST(Determinism, RepeatedSerialRunsIdentical)
{
    const SweepOptions opts = quickOptions(1);
    const AppInfo &app = findApp("fft");

    SweepRunner first(opts);
    SweepRunner second(opts);
    const ExperimentResult &a = first.run(app, ProtocolKind::Hlrc, 'A', 'O');
    const ExperimentResult &b =
        second.run(app, ProtocolKind::Hlrc, 'A', 'O');

    EXPECT_EQ(a.sequentialCycles, b.sequentialCycles);
    EXPECT_EQ(a.parallelCycles, b.parallelCycles);
    EXPECT_EQ(a.stats.netMessages, b.stats.netMessages);
    EXPECT_EQ(a.stats.netBytes, b.stats.netBytes);
    EXPECT_EQ(a.stats.readFaults, b.stats.readFaults);
    EXPECT_EQ(a.stats.writeFaults, b.stats.writeFaults);
    EXPECT_EQ(a.stats.diffsCreated, b.stats.diffsCreated);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
}

TEST(Determinism, RepeatedScRunsIdentical)
{
    const SweepOptions opts = quickOptions(1);
    const AppInfo &app = findApp("lu");

    SweepRunner first(opts);
    SweepRunner second(opts);
    const ExperimentResult &a = first.run(app, ProtocolKind::Sc, 'A', 'O');
    const ExperimentResult &b = second.run(app, ProtocolKind::Sc, 'A', 'O');

    EXPECT_EQ(a.parallelCycles, b.parallelCycles);
    EXPECT_EQ(a.stats.netMessages, b.stats.netMessages);
}

/**
 * Run the same small grid serially and on 4 workers and require every
 * cached result (and baseline) to match exactly. This is the parallel
 * sweep engine's core guarantee: job count never changes results.
 */
TEST(Determinism, ParallelSweepMatchesSerial)
{
    auto sweep = [](int jobs) {
        ParallelSweepRunner runner(quickOptions(jobs));
        for (const AppInfo &app : runner.options().selectedApps()) {
            runner.planIdeal(app);
            for (const auto &[comm, proto] : figure3Configs(false)) {
                runner.plan(app, ProtocolKind::Hlrc, comm, proto);
                runner.plan(app, ProtocolKind::Sc, comm, proto);
            }
        }
        runner.runPlanned();
        std::map<std::string, ExperimentResult> results;
        runner.forEachResult(
            [&](const std::string &key, const ExperimentResult &r) {
                results[key] = r;
            });
        std::map<std::string, Cycles> baselines;
        runner.forEachBaseline(
            [&](const std::string &app, Cycles seq) {
                baselines[app] = seq;
            });
        return std::make_pair(results, baselines);
    };

    const auto [serial, serial_base] = sweep(1);
    const auto [parallel, parallel_base] = sweep(4);

    EXPECT_EQ(serial_base, parallel_base);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_GT(serial.size(), 4u);
    for (const auto &[key, r] : serial) {
        ASSERT_TRUE(parallel.count(key)) << key;
        const ExperimentResult &p = parallel.at(key);
        EXPECT_EQ(r.sequentialCycles, p.sequentialCycles) << key;
        EXPECT_EQ(r.parallelCycles, p.parallelCycles) << key;
        EXPECT_EQ(r.stats.netMessages, p.stats.netMessages) << key;
        EXPECT_EQ(r.stats.netBytes, p.stats.netBytes) << key;
        EXPECT_EQ(r.stats.diffsCreated, p.stats.diffsCreated) << key;
        EXPECT_EQ(r.verified, p.verified) << key;
    }
}

TEST(Determinism, ParallelCustomExperimentsMatchSerial)
{
    auto sweep = [](int jobs) {
        ParallelSweepRunner runner(quickOptions(jobs));
        const AppInfo &app = findApp("fft");
        for (const int procs : {4, 8}) {
            ExperimentConfig cfg;
            cfg.protocol = ProtocolKind::Hlrc;
            cfg.commSet = 'A';
            cfg.protoSet = 'O';
            cfg.numProcs = procs;
            const SizeClass size = runner.options().size;
            runner.planCustom(
                app, "fft/" + std::to_string(procs) + "p",
                [&app, size, cfg](Cycles seq) {
                    return runExperiment(app.factory, size, cfg, seq);
                });
        }
        runner.runPlanned();
        std::map<std::string, Cycles> cycles;
        runner.forEachCustom(
            [&](const std::string &key, const ExperimentResult &r) {
                cycles[key] = r.parallelCycles;
            });
        return cycles;
    };

    const auto serial = sweep(1);
    const auto parallel = sweep(3);
    EXPECT_EQ(serial.size(), 2u);
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace swsm
