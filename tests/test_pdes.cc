/**
 * @file
 * Parallel event-kernel correctness: the property the PDES engine hangs
 * on is that a partitioned run is *bit-identical* to the serial kernel —
 * same total cycles, same per-node finish times, same protocol and
 * network counters — across protocols, kernels and partition counts.
 * Only the sim.pdes_* bookkeeping and the pending-event high-water mark
 * may differ (per-partition heaps see fewer events at once).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hh"
#include "machine/cluster.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "net/comm_params.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/pdes.hh"

namespace swsm
{
namespace
{

/** Everything a run produces that partitioning must not change. */
struct RunResult
{
    Cycles total = 0;
    std::vector<Cycles> finish;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /** The engine's own bookkeeping, kept separately for shape tests. */
    std::map<std::string, std::uint64_t> pdes;
};

/** A kernel sets up shared state on the cluster, then returns the
 *  SPMD body. */
using Kernel =
    std::function<std::function<void(Thread &)>(Cluster &)>;

RunResult
runMachine(const MachineParams &mp, const Kernel &kernel)
{
    Cluster c(mp);
    auto body = kernel(c);
    c.run(body);

    RunResult r;
    r.total = c.stats().totalCycles;
    r.finish = c.stats().finishTimes;
    for (const auto &[name, value] : c.stats().metrics.counters) {
        // Host-side bookkeeping is kept out of the equivalence
        // comparison (mirroring bench_diff.py): the engine's own
        // counters, the checkpoint saver's traffic, the fast-path
        // telemetry (a rollback invalidates fast-path entries, so
        // re-execution re-installs), and the pending-event high-water
        // mark all legitimately move when a run speculates.
        if (name.rfind("sim.pdes_", 0) == 0 ||
            name.rfind("machine.saver_", 0) == 0 ||
            name.rfind("machine.fastpath_", 0) == 0) {
            r.pdes.emplace(name, value);
            continue;
        }
        if (name == "sim.max_pending_events")
            continue;
        r.counters.emplace_back(name, value);
    }
    return r;
}

RunResult
runKernel(ProtocolKind kind, int sim_threads, int num_procs,
          const Kernel &kernel)
{
    MachineParams mp;
    mp.numProcs = num_procs;
    mp.protocol = kind;
    mp.simThreads = sim_threads;
    return runMachine(mp, kernel);
}

void
expectSameResult(const RunResult &serial, const RunResult &par,
                 const std::string &label)
{
    EXPECT_EQ(par.total, serial.total) << label;
    EXPECT_EQ(par.finish, serial.finish) << label;
    ASSERT_EQ(par.counters.size(), serial.counters.size()) << label;
    for (std::size_t i = 0; i < par.counters.size(); ++i) {
        EXPECT_EQ(par.counters[i], serial.counters[i])
            << "counter " << serial.counters[i].first << " " << label;
    }
}

void
expectEquivalent(ProtocolKind kind, int num_procs, const Kernel &kernel)
{
    const RunResult serial = runKernel(kind, 1, num_procs, kernel);
    for (const int threads : {2, 4}) {
        const RunResult par =
            runKernel(kind, threads, num_procs, kernel);
        expectSameResult(serial, par,
                         "with " + std::to_string(threads) +
                             " partitions");
    }
}

/** Lock-serialized read-modify-writes plus private slots: every
 *  acquire/release crosses partitions through the lock home. */
Kernel
lockCounterKernel()
{
    return [](Cluster &c) {
        const LockId lock = c.allocLock();
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint32_t>>(
            SharedArray<std::uint32_t>::homedAt(c, 64, 0));
        for (int i = 0; i < 64; ++i)
            a->init(c, i, 0);
        return [lock, bar, a](Thread &t) {
            for (int round = 0; round < 4; ++round) {
                t.acquire(lock);
                a->put(t, 0, a->get(t, 0) + 1);
                a->put(t, 1 + t.id(), a->get(t, 1 + t.id()) + 3);
                t.release(lock);
                t.compute(57);
            }
            t.barrier(bar);
            std::uint32_t sum = 0;
            for (int i = 0; i < 64; ++i)
                sum += a->get(t, i);
            if (sum != 4u * t.nprocs() + 12u * t.nprocs())
                SWSM_PANIC("lock counter kernel read %u", sum);
            t.barrier(bar);
        };
    };
}

/** Barrier epochs of falsely-shared writes: many same-cycle cross-node
 *  messages, the tie-break stamps' worst case. */
Kernel
falseSharingKernel()
{
    return [](Cluster &c) {
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint64_t>>(
            SharedArray<std::uint64_t>::homedAt(c, 128, 1));
        for (int i = 0; i < 128; ++i)
            a->init(c, i, 0);
        return [bar, a](Thread &t) {
            for (int epoch = 1; epoch <= 3; ++epoch) {
                for (int j = 0; j < 8; ++j)
                    a->put(t, t.id() * 8 + j,
                           static_cast<std::uint64_t>(epoch * 100 +
                                                      t.id() * 8 + j));
                t.barrier(bar);
                std::uint64_t sum = 0;
                for (int i = 0; i < 8 * t.nprocs(); ++i)
                    sum += a->get(t, i);
                (void)sum;
                t.barrier(bar);
            }
        };
    };
}

/** Unbalanced compute phases: partitions drift far apart in simulated
 *  time, exercising the window bound rather than the lockstep case. */
Kernel
skewedComputeKernel()
{
    return [](Cluster &c) {
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint32_t>>(
            SharedArray<std::uint32_t>::homedAt(c, 32, 0));
        for (int i = 0; i < 32; ++i)
            a->init(c, i, 7);
        return [bar, a](Thread &t) {
            for (int round = 0; round < 3; ++round) {
                // Node n computes n*1000 cycles before touching shared
                // state, so partition clocks skew heavily.
                t.compute(1 + t.id() * 1000);
                a->put(t, t.id(), a->get(t, t.id()) + 1);
                const int peer = (t.id() + 1) % t.nprocs();
                (void)a->get(t, peer);
                t.barrier(bar);
            }
        };
    };
}

TEST(PdesEquivalence, HlrcLockCounter)
{
    expectEquivalent(ProtocolKind::Hlrc, 4, lockCounterKernel());
}

TEST(PdesEquivalence, HlrcFalseSharing)
{
    expectEquivalent(ProtocolKind::Hlrc, 4, falseSharingKernel());
}

TEST(PdesEquivalence, HlrcSkewedCompute)
{
    expectEquivalent(ProtocolKind::Hlrc, 4, skewedComputeKernel());
}

TEST(PdesEquivalence, ScBitIdenticalAcrossPartitions)
{
    expectEquivalent(ProtocolKind::Sc, 4, lockCounterKernel());
    expectEquivalent(ProtocolKind::Sc, 4, falseSharingKernel());
    expectEquivalent(ProtocolKind::Sc, 4, skewedComputeKernel());
}

TEST(PdesEquivalence, IdealFallsBackToSerialUnchanged)
{
    // Ideal is not partition-safe (zero-latency accesses bypass the
    // network); requesting threads must silently degrade to the serial
    // kernel and still produce identical results.
    expectEquivalent(ProtocolKind::Ideal, 4, lockCounterKernel());
    expectEquivalent(ProtocolKind::Ideal, 4, falseSharingKernel());
    expectEquivalent(ProtocolKind::Ideal, 4, skewedComputeKernel());
}

TEST(PdesEquivalence, UnevenNodeCountsSplitCleanly)
{
    // 6 nodes over 4 partitions: partition sizes 1 and 2 mixed.
    expectEquivalent(ProtocolKind::Hlrc, 6, lockCounterKernel());
    expectEquivalent(ProtocolKind::Sc, 6, falseSharingKernel());
}

TEST(PdesEquivalence, PdesMetricsAreReported)
{
    MachineParams mp;
    mp.numProcs = 4;
    mp.protocol = ProtocolKind::Hlrc;
    mp.simThreads = 2;
    Cluster c(mp);
    auto body = lockCounterKernel()(c);
    c.run(body);
    std::uint64_t partitions = 0, windows = 0;
    for (const auto &[name, value] : c.stats().metrics.counters) {
        if (name == "sim.pdes_partitions")
            partitions = value;
        else if (name == "sim.pdes_windows")
            windows = value;
    }
    EXPECT_EQ(partitions, 2u);
    EXPECT_GT(windows, 0u);
}

TEST(PdesEquivalence, SingleProcRunsStaySerial)
{
    // numProcs < 2 cannot be partitioned; the request is ignored.
    MachineParams mp;
    mp.numProcs = 1;
    mp.protocol = ProtocolKind::Hlrc;
    mp.simThreads = 4;
    Cluster c(mp);
    auto body = lockCounterKernel()(c);
    c.run(body);
    for (const auto &[name, value] : c.stats().metrics.counters) {
        if (name == "sim.pdes_partitions") {
            EXPECT_EQ(value, 0u); // serial runs report no partitions
        }
    }
}

/**
 * Seed the scenario that used to separate the sound window bound from
 * the min-over-others widening: partition 0 holds cheap local work
 * stretching to t=990 while partition 1 sits idle until t=1000. A
 * message chain A@0 (slot 0) -> M1@10 (slot 1) -> reply@20 (slot 0)
 * threads through the quiet period. With lookahead 10 the sound bound
 * holds partition 0 at its own horizon until the reply lands; the
 * retired unsound widening would have let partition 0 race to t=990
 * first, so the reply arrived below its clock.
 */
void
seedWideningScenario(EventQueue &eq)
{
    eq.setNumSlots(2);
    eq.scheduleTo(0, 0, [&eq] {
        eq.scheduleTo(1, eq.now() + 10, [&eq] {
            eq.scheduleTo(0, eq.now() + 10, [] {});
        });
    });
    eq.scheduleTo(0, 50, [] {});
    eq.scheduleTo(0, 990, [] {});
    eq.scheduleTo(1, 1000, [] {});
}

TEST(PdesUnsoundWiden, SoundDefaultMatchesSerial)
{
    std::uint64_t serial_events = 0;
    {
        EventQueue eq;
        seedWideningScenario(eq);
        serial_events = eq.run();
    }
    EXPECT_EQ(serial_events, 6u);

    EventQueue eq;
    seedWideningScenario(eq);
    PdesEngine engine(eq, {0, 1}, 2, /*lookahead=*/10);
    EXPECT_EQ(engine.run(), serial_events);
}

TEST(PdesUnsoundWiden, PerDestBoundStaysSoundOnTheOldCounterexample)
{
    // The fixpoint bound subsumes what SWSM_PDES_UNSOUND_WIDEN tried
    // to buy, but soundly: the reply chain through the idle partition
    // is respected (no causality violation, same event count), while
    // at least one window is still wider than the legacy global
    // minimum (partition 0's own head never bounds it).
    std::uint64_t serial_events = 0;
    {
        EventQueue eq;
        seedWideningScenario(eq);
        serial_events = eq.run();
    }

    EventQueue eq;
    seedWideningScenario(eq);
    PdesConfig config = PdesConfig::uniform(2, 10);
    PdesEngine engine(eq, {0, 1}, 2, std::move(config));
    EXPECT_EQ(engine.run(), serial_events);
    EXPECT_GT(engine.stats().widenedWindows, 0u);
}

TEST(PdesUnsoundWiden, RetiredEnvKnobWarnsAndIsIgnored)
{
    // SWSM_PDES_UNSOUND_WIDEN is retired: setting it must not change
    // behavior in any way (the cluster warns once and ignores it), so
    // a partitioned run under the knob stays bit-identical to serial.
    const RunResult serial =
        runKernel(ProtocolKind::Hlrc, 1, 4, lockCounterKernel());
    ::setenv("SWSM_PDES_UNSOUND_WIDEN", "1", 1);
    const RunResult par =
        runKernel(ProtocolKind::Hlrc, 2, 4, lockCounterKernel());
    ::unsetenv("SWSM_PDES_UNSOUND_WIDEN");
    expectSameResult(serial, par, "under retired widening knob");
}

// ---------------------------------------------------------------------
// Golden asymmetric-topology windows (kernel level).
// ---------------------------------------------------------------------

/** Per-slot state the synthetic kernels mutate. Each event touches only
 *  its own execution slot, so the per-slot mutation order (and hence
 *  the hash chain) must be bit-identical to the serial kernel's. */
struct SlotCells
{
    explicit SlotCells(std::size_t slots) : cells(slots), order(slots) {}

    void
    touch(std::uint32_t slot, Cycles when)
    {
        cells[slot] = cells[slot] * 6364136223846793005ULL +
                      (static_cast<std::uint64_t>(when) ^ slot) + 1;
        order[slot].push_back(when);
    }

    bool
    operator==(const SlotCells &other) const
    {
        return cells == other.cells && order == other.order;
    }

    std::vector<std::uint64_t> cells;
    std::vector<std::vector<Cycles>> order;
};

/**
 * Fast/slow-link geometry, 2 partitions: slot0 -> slot1 costs 10,
 * slot1 -> slot0 costs 1000. Slot 0 is busy early (events up to 900),
 * slot 1 is quiet until 500 and replies at +1000. The per-destination
 * fixpoint provably widens partition 0's first window to
 * E[1] + L[1][0] = min(500, 0 + 10) + 1000 = 1010, while the legacy
 * global-minimum bound is min(0, 500) + min(10, 1000) = 10 — so the
 * whole busy stretch executes in one round instead of ~100.
 */
void
seedAsymmetricScenario(EventQueue &eq, SlotCells &state)
{
    eq.setNumSlots(2);
    eq.scheduleTo(0, 0, [&eq, &state] {
        state.touch(0, 0);
        eq.scheduleTo(1, 10, [&state] { state.touch(1, 10); });
    });
    for (Cycles t = 100; t <= 900; t += 100)
        eq.scheduleTo(0, t, [&state, t] { state.touch(0, t); });
    eq.scheduleTo(1, 500, [&eq, &state] {
        state.touch(1, 500);
        eq.scheduleTo(0, 1500, [&state] { state.touch(0, 1500); });
    });
}

PdesConfig
asymmetricConfig(PdesWindowPolicy policy)
{
    PdesConfig config;
    config.lookahead = {0, 10, 1000, 0}; // diagonal is ignored
    config.policy = policy;
    return config;
}

TEST(PdesPerDest, AsymmetricMatrixWidensWindowsAndMatchesSerial)
{
    SlotCells serial_state(2);
    std::uint64_t serial_events = 0;
    {
        EventQueue eq;
        seedAsymmetricScenario(eq, serial_state);
        serial_events = eq.run();
    }
    EXPECT_EQ(serial_events, 13u);

    SlotCells state(2);
    EventQueue eq;
    seedAsymmetricScenario(eq, state);
    PdesEngine engine(eq, {0, 1}, 2,
                      asymmetricConfig(PdesWindowPolicy::PerDest));
    EXPECT_EQ(engine.run(), serial_events);
    EXPECT_TRUE(state == serial_state);
    // The busy partition's window provably exceeds the legacy bound.
    EXPECT_GT(engine.stats().widenedWindows, 0u);
    // The asymmetric matrix pays off in round count: the whole run
    // completes in a handful of windows, not one per 10-cycle step.
    EXPECT_LT(engine.stats().windows, 10u);
}

TEST(PdesPerDest, GlobalMinPolicyMatchesSerialButNeverWidens)
{
    SlotCells serial_state(2);
    std::uint64_t serial_events = 0;
    {
        EventQueue eq;
        seedAsymmetricScenario(eq, serial_state);
        serial_events = eq.run();
    }

    SlotCells state(2);
    EventQueue eq;
    seedAsymmetricScenario(eq, state);
    PdesEngine engine(eq, {0, 1}, 2,
                      asymmetricConfig(PdesWindowPolicy::GlobalMin));
    EXPECT_EQ(engine.run(), serial_events);
    EXPECT_TRUE(state == serial_state);
    EXPECT_EQ(engine.stats().widenedWindows, 0u);
    // The legacy bound crawls head-to-head through slot 0's event
    // train; the per-destination bound clears it in one round (the
    // sibling test asserts < 10 rounds there).
    EXPECT_GT(engine.stats().windows, 10u);
}

// ---------------------------------------------------------------------
// Golden asymmetric topology (machine level): island geometries.
// ---------------------------------------------------------------------

TEST(PdesIslands, IslandTopologyIsBitIdenticalAndWidensWindows)
{
    // Two islands of four nodes with a 5000-cycle trench between them,
    // four partitions of two nodes: partition pairs inside an island
    // keep the short lookahead while cross-island pairs get the long
    // one — the asymmetry the per-destination matrix exploits.
    MachineParams mp;
    mp.numProcs = 8;
    mp.protocol = ProtocolKind::Hlrc;
    mp.comm = CommParams::achievable().withIslands(4, 5000, 0.5);

    mp.simThreads = 1;
    const RunResult serial = runMachine(mp, skewedComputeKernel());
    mp.simThreads = 4;
    const RunResult par = runMachine(mp, skewedComputeKernel());
    expectSameResult(serial, par, "island topology, 4 partitions");
    ASSERT_TRUE(par.pdes.count("sim.pdes_window_widened"));
    EXPECT_GT(par.pdes.at("sim.pdes_window_widened"), 0u);
}

TEST(PdesIslands, GlobalMinPolicyIsBitIdenticalAndNeverWidens)
{
    MachineParams mp;
    mp.numProcs = 8;
    mp.protocol = ProtocolKind::Hlrc;
    mp.comm = CommParams::achievable().withIslands(4, 5000, 0.5);
    mp.pdesPerDest = false;

    mp.simThreads = 1;
    const RunResult serial = runMachine(mp, skewedComputeKernel());
    mp.simThreads = 4;
    const RunResult par = runMachine(mp, skewedComputeKernel());
    expectSameResult(serial, par, "island topology, legacy windows");
    ASSERT_TRUE(par.pdes.count("sim.pdes_window_widened"));
    EXPECT_EQ(par.pdes.at("sim.pdes_window_widened"), 0u);
}

TEST(PdesIslands, ScProtocolOnIslandsStaysBitIdentical)
{
    MachineParams mp;
    mp.numProcs = 8;
    mp.protocol = ProtocolKind::Sc;
    mp.comm = CommParams::achievable().withIslands(2, 3000, 0.25);

    mp.simThreads = 1;
    const RunResult serial = runMachine(mp, falseSharingKernel());
    mp.simThreads = 4;
    const RunResult par = runMachine(mp, falseSharingKernel());
    expectSameResult(serial, par, "SC island topology");
}

// ---------------------------------------------------------------------
// Bounded-optimism speculation (kernel level, with a real state saver).
// ---------------------------------------------------------------------

/** Checkpoints the slots each partition owns — the kernel-test
 *  embedder's PdesStateSaver. Only the calling partition's slots are
 *  copied, so concurrent saves never touch shared cells. */
class CellSaver : public PdesStateSaver
{
  public:
    CellSaver(SlotCells &state, std::vector<int> partition_of)
        : state_(state), partitionOf_(std::move(partition_of)),
          saved_(partitionOf_.size() + 1)
    {}

    void
    save(int partition) override
    {
        auto &snap = saved_[partition];
        snap.clear();
        for (std::uint32_t s = 0; s < partitionOf_.size(); ++s) {
            if (partitionOf_[s] == partition) {
                snap.push_back(Snap{s, state_.cells[s],
                                    state_.order[s].size()});
            }
        }
        saves_.fetch_add(1, std::memory_order_relaxed);
    }

    void
    restore(int partition) override
    {
        for (const Snap &sn : saved_[partition]) {
            state_.cells[sn.slot] = sn.cell;
            state_.order[sn.slot].resize(sn.orderLen);
        }
        restores_.fetch_add(1, std::memory_order_relaxed);
    }

    void
    discard(int partition) override
    {
        saved_[partition].clear();
        discards_.fetch_add(1, std::memory_order_relaxed);
    }

    int saves() const { return saves_.load(); }
    int restores() const { return restores_.load(); }
    int discards() const { return discards_.load(); }

  private:
    struct Snap
    {
        std::uint32_t slot;
        std::uint64_t cell;
        std::size_t orderLen;
    };

    SlotCells &state_;
    std::vector<int> partitionOf_;
    std::vector<std::vector<Snap>> saved_;
    std::atomic<int> saves_{0};
    std::atomic<int> restores_{0};
    std::atomic<int> discards_{0};
};

/**
 * Speculation workload, 2 partitions, uniform lookahead 100: slot 0
 * runs a dense 10-cycle event train (t = 0..590); slot 1 either sits
 * idle until t=10000 (the commit case: no message can ever straggle)
 * or fires at t=50 and mails slot 0 an event landing at t=150, right
 * in the middle of what partition 0 speculates (the rollback case).
 */
void
seedSpecScenario(EventQueue &eq, SlotCells &state, bool straggler)
{
    eq.setNumSlots(2);
    for (Cycles t = 0; t < 600; t += 10)
        eq.scheduleTo(0, t, [&state, t] { state.touch(0, t); });
    if (straggler) {
        eq.scheduleTo(1, 50, [&eq, &state] {
            state.touch(1, 50);
            eq.scheduleTo(0, 150, [&state] { state.touch(0, 150); });
        });
    } else {
        eq.scheduleTo(1, 10000,
                      [&state] { state.touch(1, 10000); });
    }
}

struct SpecRun
{
    std::uint64_t executed = 0;
    SlotCells state{2};
    PdesRunStats stats;
    int saves = 0;
    int restores = 0;
    int discards = 0;
};

SpecRun
runSpecScenario(bool straggler, int optimism)
{
    SpecRun run;
    EventQueue eq;
    seedSpecScenario(eq, run.state, straggler);
    CellSaver saver(run.state, {0, 1});
    PdesConfig config = PdesConfig::uniform(2, 100);
    config.optimism = optimism;
    config.saver = &saver;
    PdesEngine engine(eq, {0, 1}, 2, std::move(config));
    run.executed = engine.run();
    engine.checkDrained();
    run.stats = engine.stats();
    run.saves = saver.saves();
    run.restores = saver.restores();
    run.discards = saver.discards();
    return run;
}

SpecRun
serialSpecScenario(bool straggler)
{
    SpecRun run;
    EventQueue eq;
    seedSpecScenario(eq, run.state, straggler);
    run.executed = eq.run();
    return run;
}

TEST(PdesOptimism, SpeculationCommitsWhenNoStragglerExists)
{
    const SpecRun serial = serialSpecScenario(/*straggler=*/false);
    const SpecRun par = runSpecScenario(/*straggler=*/false,
                                        /*optimism=*/8);
    EXPECT_EQ(par.executed, serial.executed);
    EXPECT_TRUE(par.state == serial.state);
    EXPECT_GT(par.stats.speculated, 0u);
    EXPECT_GT(par.stats.commits, 0u);
    EXPECT_EQ(par.stats.rollbacks, 0u);
    // Every checkpoint is eventually resolved: committed speculations
    // discard it, rolled-back ones restore it.
    EXPECT_EQ(par.saves, par.discards + par.restores);
}

TEST(PdesOptimism, NaturalStragglerRollsBackToIdenticalState)
{
    const SpecRun serial = serialSpecScenario(/*straggler=*/true);
    const SpecRun par = runSpecScenario(/*straggler=*/true,
                                        /*optimism=*/8);
    // The t=150 arrival straggles below the speculated horizon; the
    // rollback must restore byte-identical state and the re-execution
    // must interleave it exactly where the serial order puts it.
    EXPECT_EQ(par.executed, serial.executed);
    EXPECT_TRUE(par.state == serial.state);
    EXPECT_GT(par.stats.speculated, 0u);
    EXPECT_GE(par.stats.rollbacks, 1u);
    EXPECT_GT(par.restores, 0);
    EXPECT_EQ(par.saves, par.discards + par.restores);
}

TEST(PdesOptimism, ForcedStragglerInjectionExercisesRollback)
{
    // check::FaultPlan injection: the commit scenario has no real
    // straggler, but the plan forces each partition's first resolution
    // down the rollback path — state must still end bit-identical.
    const SpecRun serial = serialSpecScenario(/*straggler=*/false);
    check::FaultPlan plan;
    plan.pdesForceStraggler = true;
    check::ScopedFaultPlan scope(plan);
    const SpecRun par = runSpecScenario(/*straggler=*/false,
                                        /*optimism=*/8);
    EXPECT_EQ(par.executed, serial.executed);
    EXPECT_TRUE(par.state == serial.state);
    EXPECT_GE(par.stats.rollbacks, 1u);
    EXPECT_GT(par.restores, 0);
    EXPECT_EQ(par.saves, par.discards + par.restores);
}

/**
 * Regression: a same-cycle child of a speculated event is stamped by
 * its own slot's sequence, which can be *smaller* than the parent's
 * stamp — so the largest speculated (when, stamp) key is not the key
 * of the last event executed. A straggler whose stamp falls between
 * the child's and the parent's serially pops *before* the parent;
 * comparing it only against the last pop lets it slip past the
 * straggler check and commits the wrong same-cycle interleaving
 * (caught in the wild as a water-nsq schedule divergence).
 *
 * Geometry: slot 0 -> partition 0, slots {1, 2} -> partition 1,
 * uniform lookahead 100. Slot 2 (stamps 2 << 48 | seq) mails slot 0 an
 * event at t=250 whose body schedules a same-cycle local child
 * (stamped by slot 0, tiny). Slot 1 (stamps 1 << 48 | seq, between the
 * two) mails slot 0 another t=250 event, sent one round later so it
 * arrives while partition 0 is speculating the first one plus its
 * child. Serially the slot-1 event pops first.
 */
TEST(PdesOptimism, SameCycleStragglerBelowSpeculatedParentRollsBack)
{
    auto seed = [](EventQueue &eq, SlotCells &state) {
        eq.setNumSlots(3);
        eq.scheduleTo(0, 0, [&state] { state.touch(0, 0); });
        eq.scheduleTo(2, 0, [&eq, &state] {
            state.touch(2, 0);
            eq.scheduleTo(0, 250, [&eq, &state] {
                state.touch(0, 1000); // parent, slot-2 stamp
                eq.schedule(250,
                            [&state] { state.touch(0, 1001); }); // child
            });
        });
        eq.scheduleTo(1, 150, [&eq, &state] {
            state.touch(1, 150);
            // The straggler: same cycle as the parent, smaller stamp.
            eq.scheduleTo(0, 250, [&state] { state.touch(0, 2000); });
        });
    };

    SlotCells serial_state(3);
    std::uint64_t serial_events = 0;
    {
        EventQueue eq;
        seed(eq, serial_state);
        serial_events = eq.run();
    }

    SlotCells par_state(3);
    CellSaver saver(par_state, {0, 1, 1});
    EventQueue eq;
    seed(eq, par_state);
    PdesConfig config = PdesConfig::uniform(2, 100);
    config.optimism = 8;
    config.saver = &saver;
    PdesEngine engine(eq, {0, 1, 1}, 2, std::move(config));
    const std::uint64_t par_events = engine.run();
    engine.checkDrained();

    EXPECT_EQ(par_events, serial_events);
    EXPECT_TRUE(par_state == serial_state);
    // The scenario must actually speculate the parent + child and see
    // the slot-1 arrival as a straggler — if these stop holding, the
    // window geometry drifted and the test no longer covers the case.
    EXPECT_GE(engine.stats().speculated, 2u);
    EXPECT_GE(engine.stats().rollbacks, 1u);
}

TEST(PdesOptimism, OptimismOffNeverSpeculates)
{
    const SpecRun serial = serialSpecScenario(/*straggler=*/false);
    check::FaultPlan plan;
    plan.pdesForceStraggler = true; // armed but unreachable
    check::ScopedFaultPlan scope(plan);
    const SpecRun par = runSpecScenario(/*straggler=*/false,
                                        /*optimism=*/0);
    EXPECT_EQ(par.executed, serial.executed);
    EXPECT_TRUE(par.state == serial.state);
    EXPECT_EQ(par.stats.speculated, 0u);
    EXPECT_EQ(par.stats.rollbacks, 0u);
    EXPECT_EQ(par.stats.commits, 0u);
    EXPECT_EQ(par.saves, 0);
}

/** Host-side telemetry segregated by runMachine (zero if absent). */
std::uint64_t
counterValue(const RunResult &r, const std::string &name)
{
    const auto it = r.pdes.find(name);
    return it == r.pdes.end() ? 0 : it->second;
}

TEST(PdesOptimism, ClusterWithSaverSpeculatesBitIdentically)
{
    // The machine-level state saver (machine/pdes_saver.hh) makes
    // cluster runs with optimism actually speculate: the engine must
    // report speculation and the simulated results must stay
    // bit-identical to serial.
    const RunResult serial =
        runKernel(ProtocolKind::Hlrc, 1, 4, lockCounterKernel());
    MachineParams mp;
    mp.numProcs = 4;
    mp.protocol = ProtocolKind::Hlrc;
    mp.simThreads = 2;
    mp.pdesOptimism = 8;
    const RunResult par = runMachine(mp, lockCounterKernel());
    expectSameResult(serial, par, "cluster optimism with machine saver");
    ASSERT_TRUE(par.pdes.count("sim.pdes_speculated"));
    EXPECT_GT(par.pdes.at("sim.pdes_speculated"), 0u);
    EXPECT_GT(par.pdes.at("sim.pdes_commits") +
                  par.pdes.at("sim.pdes_rollbacks"),
              0u);
    // Every checkpoint resolves: committed speculations discard it,
    // rolled-back ones restore it.
    EXPECT_GT(counterValue(par, "machine.saver_saves"), 0u);
    EXPECT_EQ(counterValue(par, "machine.saver_saves"),
              counterValue(par, "machine.saver_discards") +
                  counterValue(par, "machine.saver_restores"));
}

TEST(PdesOptimism, ClusterForcedStragglerRollsBackBitIdentically)
{
    // check::FaultPlan injection at the cluster level: force each
    // partition's first speculation resolution down the rollback path.
    // The saver's restore must reproduce byte-identical machine state
    // (counters, finish times, simulated cycles) after re-execution.
    for (const ProtocolKind kind :
         {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
        const RunResult serial =
            runKernel(kind, 1, 4, lockCounterKernel());
        check::FaultPlan plan;
        plan.pdesForceStraggler = true;
        check::ScopedFaultPlan scope(plan);
        MachineParams mp;
        mp.numProcs = 4;
        mp.protocol = kind;
        mp.simThreads = 2;
        mp.pdesOptimism = 8;
        const RunResult par = runMachine(mp, lockCounterKernel());
        expectSameResult(serial, par,
                         std::string("forced straggler rollback ") +
                             protocolKindName(kind));
        EXPECT_GE(par.pdes.at("sim.pdes_rollbacks"), 1u)
            << protocolKindName(kind);
        EXPECT_GE(counterValue(par, "machine.saver_restores"), 1u)
            << protocolKindName(kind);
        EXPECT_EQ(counterValue(par, "machine.saver_saves"),
                  counterValue(par, "machine.saver_discards") +
                      counterValue(par, "machine.saver_restores"))
            << protocolKindName(kind);
    }
}

} // namespace
} // namespace swsm
