/**
 * @file
 * Parallel event-kernel correctness: the property the PDES engine hangs
 * on is that a partitioned run is *bit-identical* to the serial kernel —
 * same total cycles, same per-node finish times, same protocol and
 * network counters — across protocols, kernels and partition counts.
 * Only the sim.pdes_* bookkeeping and the pending-event high-water mark
 * may differ (per-partition heaps see fewer events at once).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hh"
#include "machine/cluster.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/pdes.hh"

namespace swsm
{
namespace
{

/** Everything a run produces that partitioning must not change. */
struct RunResult
{
    Cycles total = 0;
    std::vector<Cycles> finish;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/** A kernel sets up shared state on the cluster, then returns the
 *  SPMD body. */
using Kernel =
    std::function<std::function<void(Thread &)>(Cluster &)>;

RunResult
runKernel(ProtocolKind kind, int sim_threads, int num_procs,
          const Kernel &kernel)
{
    MachineParams mp;
    mp.numProcs = num_procs;
    mp.protocol = kind;
    mp.simThreads = sim_threads;
    Cluster c(mp);
    auto body = kernel(c);
    c.run(body);

    RunResult r;
    r.total = c.stats().totalCycles;
    r.finish = c.stats().finishTimes;
    for (const auto &[name, value] : c.stats().metrics.counters) {
        // The engine's own bookkeeping and the pending-event high-water
        // mark are the only legitimate differences.
        if (name.rfind("sim.pdes_", 0) == 0 ||
            name == "sim.max_pending_events")
            continue;
        r.counters.emplace_back(name, value);
    }
    return r;
}

void
expectEquivalent(ProtocolKind kind, int num_procs, const Kernel &kernel)
{
    const RunResult serial = runKernel(kind, 1, num_procs, kernel);
    for (const int threads : {2, 4}) {
        const RunResult par =
            runKernel(kind, threads, num_procs, kernel);
        EXPECT_EQ(par.total, serial.total) << threads << " partitions";
        EXPECT_EQ(par.finish, serial.finish) << threads << " partitions";
        ASSERT_EQ(par.counters.size(), serial.counters.size());
        for (std::size_t i = 0; i < par.counters.size(); ++i) {
            EXPECT_EQ(par.counters[i], serial.counters[i])
                << "counter " << serial.counters[i].first << " with "
                << threads << " partitions";
        }
    }
}

/** Lock-serialized read-modify-writes plus private slots: every
 *  acquire/release crosses partitions through the lock home. */
Kernel
lockCounterKernel()
{
    return [](Cluster &c) {
        const LockId lock = c.allocLock();
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint32_t>>(
            SharedArray<std::uint32_t>::homedAt(c, 64, 0));
        for (int i = 0; i < 64; ++i)
            a->init(c, i, 0);
        return [lock, bar, a](Thread &t) {
            for (int round = 0; round < 4; ++round) {
                t.acquire(lock);
                a->put(t, 0, a->get(t, 0) + 1);
                a->put(t, 1 + t.id(), a->get(t, 1 + t.id()) + 3);
                t.release(lock);
                t.compute(57);
            }
            t.barrier(bar);
            std::uint32_t sum = 0;
            for (int i = 0; i < 64; ++i)
                sum += a->get(t, i);
            if (sum != 4u * t.nprocs() + 12u * t.nprocs())
                SWSM_PANIC("lock counter kernel read %u", sum);
            t.barrier(bar);
        };
    };
}

/** Barrier epochs of falsely-shared writes: many same-cycle cross-node
 *  messages, the tie-break stamps' worst case. */
Kernel
falseSharingKernel()
{
    return [](Cluster &c) {
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint64_t>>(
            SharedArray<std::uint64_t>::homedAt(c, 128, 1));
        for (int i = 0; i < 128; ++i)
            a->init(c, i, 0);
        return [bar, a](Thread &t) {
            for (int epoch = 1; epoch <= 3; ++epoch) {
                for (int j = 0; j < 8; ++j)
                    a->put(t, t.id() * 8 + j,
                           static_cast<std::uint64_t>(epoch * 100 +
                                                      t.id() * 8 + j));
                t.barrier(bar);
                std::uint64_t sum = 0;
                for (int i = 0; i < 8 * t.nprocs(); ++i)
                    sum += a->get(t, i);
                (void)sum;
                t.barrier(bar);
            }
        };
    };
}

/** Unbalanced compute phases: partitions drift far apart in simulated
 *  time, exercising the window bound rather than the lockstep case. */
Kernel
skewedComputeKernel()
{
    return [](Cluster &c) {
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint32_t>>(
            SharedArray<std::uint32_t>::homedAt(c, 32, 0));
        for (int i = 0; i < 32; ++i)
            a->init(c, i, 7);
        return [bar, a](Thread &t) {
            for (int round = 0; round < 3; ++round) {
                // Node n computes n*1000 cycles before touching shared
                // state, so partition clocks skew heavily.
                t.compute(1 + t.id() * 1000);
                a->put(t, t.id(), a->get(t, t.id()) + 1);
                const int peer = (t.id() + 1) % t.nprocs();
                (void)a->get(t, peer);
                t.barrier(bar);
            }
        };
    };
}

TEST(PdesEquivalence, HlrcLockCounter)
{
    expectEquivalent(ProtocolKind::Hlrc, 4, lockCounterKernel());
}

TEST(PdesEquivalence, HlrcFalseSharing)
{
    expectEquivalent(ProtocolKind::Hlrc, 4, falseSharingKernel());
}

TEST(PdesEquivalence, HlrcSkewedCompute)
{
    expectEquivalent(ProtocolKind::Hlrc, 4, skewedComputeKernel());
}

TEST(PdesEquivalence, ScBitIdenticalAcrossPartitions)
{
    expectEquivalent(ProtocolKind::Sc, 4, lockCounterKernel());
    expectEquivalent(ProtocolKind::Sc, 4, falseSharingKernel());
    expectEquivalent(ProtocolKind::Sc, 4, skewedComputeKernel());
}

TEST(PdesEquivalence, IdealFallsBackToSerialUnchanged)
{
    // Ideal is not partition-safe (zero-latency accesses bypass the
    // network); requesting threads must silently degrade to the serial
    // kernel and still produce identical results.
    expectEquivalent(ProtocolKind::Ideal, 4, lockCounterKernel());
    expectEquivalent(ProtocolKind::Ideal, 4, falseSharingKernel());
    expectEquivalent(ProtocolKind::Ideal, 4, skewedComputeKernel());
}

TEST(PdesEquivalence, UnevenNodeCountsSplitCleanly)
{
    // 6 nodes over 4 partitions: partition sizes 1 and 2 mixed.
    expectEquivalent(ProtocolKind::Hlrc, 6, lockCounterKernel());
    expectEquivalent(ProtocolKind::Sc, 6, falseSharingKernel());
}

TEST(PdesEquivalence, PdesMetricsAreReported)
{
    MachineParams mp;
    mp.numProcs = 4;
    mp.protocol = ProtocolKind::Hlrc;
    mp.simThreads = 2;
    Cluster c(mp);
    auto body = lockCounterKernel()(c);
    c.run(body);
    std::uint64_t partitions = 0, windows = 0;
    for (const auto &[name, value] : c.stats().metrics.counters) {
        if (name == "sim.pdes_partitions")
            partitions = value;
        else if (name == "sim.pdes_windows")
            windows = value;
    }
    EXPECT_EQ(partitions, 2u);
    EXPECT_GT(windows, 0u);
}

TEST(PdesEquivalence, SingleProcRunsStaySerial)
{
    // numProcs < 2 cannot be partitioned; the request is ignored.
    MachineParams mp;
    mp.numProcs = 1;
    mp.protocol = ProtocolKind::Hlrc;
    mp.simThreads = 4;
    Cluster c(mp);
    auto body = lockCounterKernel()(c);
    c.run(body);
    for (const auto &[name, value] : c.stats().metrics.counters) {
        if (name == "sim.pdes_partitions") {
            EXPECT_EQ(value, 0u); // serial runs report no partitions
        }
    }
}

/**
 * Seed the scenario that separates the sound window bound (global min
 * including the partition's own horizon) from the min-over-others
 * widening: partition 0 holds cheap local work stretching to t=990
 * while partition 1 sits idle until t=1000. A message chain
 * A@0 (slot 0) -> M1@10 (slot 1) -> reply@20 (slot 0) threads through
 * the quiet period. With lookahead 10 the sound bound holds partition
 * 0 at its own horizon until the reply lands; the widened bound lets
 * partition 0 race to t=990 first, so the reply arrives below its
 * clock — a causality violation the drain check must catch.
 */
void
seedWideningScenario(EventQueue &eq)
{
    eq.setNumSlots(2);
    eq.scheduleTo(0, 0, [&eq] {
        eq.scheduleTo(1, eq.now() + 10, [&eq] {
            eq.scheduleTo(0, eq.now() + 10, [] {});
        });
    });
    eq.scheduleTo(0, 50, [] {});
    eq.scheduleTo(0, 990, [] {});
    eq.scheduleTo(1, 1000, [] {});
}

TEST(PdesUnsoundWiden, SoundDefaultMatchesSerial)
{
    std::uint64_t serial_events = 0;
    {
        EventQueue eq;
        seedWideningScenario(eq);
        serial_events = eq.run();
    }
    EXPECT_EQ(serial_events, 6u);

    EventQueue eq;
    seedWideningScenario(eq);
    PdesEngine engine(eq, {0, 1}, 2, /*lookahead=*/10);
    EXPECT_EQ(engine.run(), serial_events);
}

TEST(PdesUnsoundWiden, WidenedBoundTripsCausalityCheck)
{
    EventQueue eq;
    seedWideningScenario(eq);
    PdesEngine engine(eq, {0, 1}, 2, /*lookahead=*/10,
                      /*unsound_widen=*/true);
    EXPECT_THROW(engine.run(), check::InvariantViolation);
}

} // namespace
} // namespace swsm
