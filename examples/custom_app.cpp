/**
 * @file
 * Writing your own application against the public API.
 *
 * A small SPMD histogram program: threads read a shared input array,
 * accumulate private histograms, merge them under locks, and check the
 * result — demonstrating shared allocation with home placement, typed
 * shared arrays, compute charging, locks and barriers.
 *
 * The program is run twice — once under page-based HLRC and once under
 * fine-grained SC — and the two simulations execute concurrently on a
 * TaskPool (each Cluster is confined to one worker thread), showing
 * how to use the parallel sweep engine's executor directly for custom
 * experiments.
 *
 *   ./build/examples/custom_app [--jobs=N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "harness/sweep.hh"
#include "harness/task_pool.hh"
#include "machine/cluster.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "sim/rng.hh"

namespace
{

struct HistogramResult
{
    swsm::Cycles totalCycles = 0;
    std::uint64_t netMessages = 0;
    bool ok = false;
};

HistogramResult
runHistogram(swsm::ProtocolKind protocol)
{
    using namespace swsm;

    MachineParams mp;
    mp.numProcs = 8;
    mp.protocol = protocol;

    Cluster cluster(mp);

    constexpr std::uint64_t n = 64 * 1024;
    constexpr int buckets = 32;

    // Shared input, block-distributed across the nodes' homes.
    SharedArray<std::uint32_t> input(cluster, n,
                                     cluster.params().pageBytes);
    for (int p = 0; p < mp.numProcs; ++p) {
        const std::uint64_t per = n / mp.numProcs;
        cluster.space().setRangeHome(input.addr(p * per),
                                     per * sizeof(std::uint32_t), p);
    }
    SharedArray<std::uint64_t> histogram(cluster, buckets);

    Rng rng(7);
    std::vector<std::uint64_t> expect(buckets, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto v = static_cast<std::uint32_t>(rng.nextBounded(1000));
        input.init(cluster, i, v);
        ++expect[v % buckets];
    }
    for (int b = 0; b < buckets; ++b)
        histogram.init(cluster, b, 0);

    const BarrierId bar = cluster.allocBarrier();
    std::vector<LockId> locks(buckets);
    for (auto &l : locks)
        l = cluster.allocLock();

    cluster.run([&](Thread &t) {
        // 1. Private histogram over my block (bulk shared reads).
        const std::uint64_t per = n / t.nprocs();
        std::vector<std::uint32_t> mine(per);
        input.read(t, t.id() * per, per, mine.data());
        std::vector<std::uint64_t> local(buckets, 0);
        for (const std::uint32_t v : mine)
            ++local[v % buckets];
        t.compute(2 * per); // ~2 cycles per element

        // 2. Merge under per-bucket locks.
        for (int b = 0; b < buckets; ++b) {
            if (local[b] == 0)
                continue;
            t.acquire(locks[b]);
            histogram.put(t, b, histogram.get(t, b) + local[b]);
            t.release(locks[b]);
        }
        t.barrier(bar);
    });

    HistogramResult res;
    res.ok = true;
    for (int b = 0; b < buckets; ++b)
        res.ok &= histogram.peek(cluster, b) == expect[b];
    res.totalCycles = cluster.stats().totalCycles;
    res.netMessages = cluster.stats().netMessages;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swsm;

    int jobs = defaultJobs();
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            jobs = std::atoi(argv[i] + 7);
        else {
            std::fprintf(stderr, "usage: %s [--jobs=N]\n", argv[0]);
            return 1;
        }
    }

    const ProtocolKind protocols[] = {ProtocolKind::Hlrc,
                                      ProtocolKind::Sc};
    HistogramResult results[2];

    // Both simulations are independent (one Cluster each, confined to
    // its worker thread), so they can run concurrently.
    TaskPool pool(jobs < 1 ? 1 : jobs);
    for (int i = 0; i < 2; ++i)
        pool.submit([i, &protocols, &results] {
            results[i] = runHistogram(protocols[i]);
        });
    pool.run();

    bool ok = true;
    for (int i = 0; i < 2; ++i) {
        const HistogramResult &r = results[i];
        std::printf("histogram on 8-node %s cluster: %.2f Mcycles, "
                    "%llu messages, result %s\n",
                    protocolKindName(protocols[i]), r.totalCycles / 1e6,
                    static_cast<unsigned long long>(r.netMessages),
                    r.ok ? "correct" : "WRONG");
        ok &= r.ok;
    }
    return ok ? 0 : 1;
}
