/**
 * @file
 * The paper's headline comparison on one pathological application:
 * Radix sort, original vs. restructured, page-based SVM (HLRC) vs.
 * fine-grained SC — showing how coherence granularity interacts with
 * false sharing and how restructuring rescues the page-based protocol.
 *
 * The four (version x protocol) runs are independent and execute on
 * the parallel sweep engine.
 *
 *   ./build/examples/protocol_compare [--quick] [--jobs=N]
 */

#include <cstdio>

#include "harness/parallel_sweep.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    opts.apps = {"radix", "radix-local"};
    if (!opts.parse(argc, argv))
        return 1;

    ParallelSweepRunner runner(opts);

    for (const AppInfo &app : opts.selectedApps()) {
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc})
            runner.plan(app, kind, 'A', 'O');
    }
    runner.runPlanned();

    std::printf("Radix sort, 16 processors: the page-granularity "
                "false-sharing story\n\n");
    std::printf("%-14s %-6s %9s %10s %10s %9s\n", "Version", "Proto",
                "speedup", "messages", "MB moved", "diffs");

    for (const AppInfo &app : opts.selectedApps()) {
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            const ExperimentResult &r = runner.run(app, kind, 'A', 'O');
            std::printf("%-14s %-6s %9.2f %10llu %10.1f %9llu%s\n",
                        app.name.c_str(), protocolKindName(kind),
                        r.speedup(),
                        static_cast<unsigned long long>(
                            r.stats.netMessages),
                        r.stats.netBytes / 1e6,
                        static_cast<unsigned long long>(
                            r.stats.diffsCreated),
                        r.verified ? "" : "  (VERIFY FAILED)");
        }
    }

    std::printf("\nOriginal radix scatters 4-byte writes across the "
                "whole destination array:\nunder a 4 KB-page protocol "
                "every processor twins, diffs and fetches nearly\nevery "
                "page. The restructured version stages keys locally and "
                "lets owners\npull contiguous runs — the paper's "
                "application-layer fix.\n");
    return 0;
}
