/**
 * @file
 * General-purpose command-line runner: simulate any registered
 * application under any configuration and print the full report
 * (speedup, per-processor breakdowns, protocol and network counters).
 *
 *   ./build/examples/swsm_run --app=radix --proto=hlrc --config=AO \
 *       [--procs=16] [--size=tiny|small|medium] [--block=64] [--jobs=N] \
 *       [--trace=FILE]
 *
 * Runs through the parallel sweep engine (a single experiment, so
 * --jobs only matters when this grows into a grid).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/app_registry.hh"
#include "harness/parallel_sweep.hh"

namespace
{

void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s --app=NAME [--proto=hlrc|sc|ideal] "
                 "[--config=XY] [--procs=N]\n"
                 "          [--size=tiny|small|medium] [--block=BYTES] "
                 "[--jobs=N] [--trace=FILE]\n"
                 "applications:\n",
                 prog);
    for (const swsm::AppInfo &app : swsm::appRegistry())
        std::fprintf(stderr, "  %-16s (%s)\n", app.name.c_str(),
                     app.paperSize.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swsm;

    std::string app_name;
    std::string proto = "hlrc";
    std::string config = "AO";
    std::string size_name = "small";
    std::string trace_path;
    int procs = 16;
    int block = 0;
    int jobs = defaultJobs();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *key) -> const char * {
            const std::size_t len = std::strlen(key);
            return arg.rfind(key, 0) == 0 ? arg.c_str() + len : nullptr;
        };
        bool ok = true;
        if (const char *v = value("--app="))
            app_name = v;
        else if (const char *v = value("--proto="))
            proto = v;
        else if (const char *v = value("--config="))
            config = v;
        else if (const char *v = value("--size="))
            size_name = v;
        else if (const char *v = value("--procs="))
            ok = parseBoundedInt(v, 1, maxProcs, procs);
        else if (const char *v = value("--block="))
            ok = parseBoundedInt(v, 1, 1 << 20, block);
        else if (const char *v = value("--jobs="))
            ok = parseBoundedInt(v, 1, maxJobs, jobs);
        else if (const char *v = value("--trace="))
            trace_path = v;
        else
            ok = false;
        if (!ok) {
            std::fprintf(stderr, "invalid argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }
    if (app_name.empty() || config.size() != 2) {
        usage(argv[0]);
        return 1;
    }

    const AppInfo &app = findApp(app_name);
    const SizeClass size = size_name == "tiny" ? SizeClass::Tiny
        : size_name == "medium"                ? SizeClass::Medium
                                               : SizeClass::Small;

    ExperimentConfig cfg;
    cfg.protocol = proto == "sc" ? ProtocolKind::Sc
        : proto == "ideal"       ? ProtocolKind::Ideal
                                 : ProtocolKind::Hlrc;
    cfg.commSet = config[0];
    cfg.protoSet = config[1];
    cfg.numProcs = procs;
    cfg.blockBytes =
        block ? static_cast<std::uint32_t>(block) : app.scBlockBytes;
    cfg.trace = !trace_path.empty();

    std::printf("%s on %d-proc %s cluster, config %s, size %s\n",
                app.name.c_str(), procs, protocolKindName(cfg.protocol),
                cfg.name().c_str(), size_name.c_str());

    SweepOptions opts;
    opts.size = size;
    opts.numProcs = procs;
    opts.apps = {app.name};
    opts.jobs = jobs < 1 ? 1 : jobs;
    ParallelSweepRunner runner(opts);
    runner.planCustom(app, app.name + "/run", [&app, size, cfg](Cycles s) {
        return runExperiment(app.factory, size, cfg, s);
    });
    runner.runPlanned();

    const Cycles seq = runner.baseline(app);
    const ExperimentResult &r = runner.custom(app.name + "/run");

    std::printf("\nsequential: %.2f Mcycles   parallel: %.2f Mcycles   "
                "speedup: %.2f   verified: %s\n",
                seq / 1e6, r.parallelCycles / 1e6, r.speedup(),
                r.verified ? "yes" : "NO");

    std::printf("\nper-processor average breakdown (Mcycles):\n");
    for (int b = 0; b < numTimeBuckets; ++b) {
        const auto bucket = static_cast<TimeBucket>(b);
        std::printf("  %-14s %10.3f  (%4.1f%%)\n", timeBucketName(bucket),
                    r.stats.avgBucket(bucket) / 1e6,
                    100.0 * r.stats.bucketFraction(bucket));
    }

    std::printf("\nprotocol events:\n");
    std::printf("  read faults    %10llu\n",
                static_cast<unsigned long long>(r.stats.readFaults));
    std::printf("  write faults   %10llu\n",
                static_cast<unsigned long long>(r.stats.writeFaults));
    std::printf("  data fetches   %10llu\n",
                static_cast<unsigned long long>(r.stats.pageFetches));
    std::printf("  diffs created  %10llu\n",
                static_cast<unsigned long long>(r.stats.diffsCreated));
    std::printf("  invalidations  %10llu\n",
                static_cast<unsigned long long>(r.stats.invalidations));
    std::printf("  lock handoffs  %10llu\n",
                static_cast<unsigned long long>(r.stats.lockHandoffs));
    std::printf("  handlers run   %10llu\n",
                static_cast<unsigned long long>(r.stats.handlersRun));
    std::printf("\nnetwork: %llu messages, %.2f MB\n",
                static_cast<unsigned long long>(r.stats.netMessages),
                r.stats.netBytes / 1e6);

    if (!trace_path.empty()) {
        if (r.trace &&
            writeChromeTrace(trace_path, app.name + "/run", *r.trace))
            std::printf("\ntrace: %s (%zu events; open in "
                        "chrome://tracing)\n",
                        trace_path.c_str(), r.trace->events.size());
        else
            std::fprintf(stderr, "cannot write trace %s\n",
                         trace_path.c_str());
    }
    return r.verified ? 0 : 1;
}
