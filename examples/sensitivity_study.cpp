/**
 * @file
 * A miniature version of the paper's layered study on one application:
 * sweep the communication layer (A->H->B), the protocol layer (O->H->B)
 * and the application layer (original vs. restructured Ocean), and
 * print the 3x3x2 speedup cube plus the synergy deltas.
 *
 *   ./build/examples/sensitivity_study [--quick]
 */

#include <cstdio>
#include <cstring>

#include "apps/app_registry.hh"
#include "harness/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    const SizeClass size =
        (argc > 1 && std::strcmp(argv[1], "--quick") == 0)
        ? SizeClass::Tiny
        : SizeClass::Small;

    std::printf("Ocean under HLRC, 16 processors: the three layers "
                "(application x\ncommunication x protocol)\n\n");

    for (const char *name : {"ocean", "ocean-rowwise"}) {
        const AppInfo &app = findApp(name);
        const Cycles seq = runSequentialBaseline(app.factory, size);
        std::printf("%s:\n        proto O   proto H   proto B\n",
                    name);
        double grid[3][3];
        int ci = 0;
        for (const char comm : {'A', 'H', 'B'}) {
            std::printf("comm %c", comm);
            int pi = 0;
            for (const char proto : {'O', 'H', 'B'}) {
                ExperimentConfig cfg;
                cfg.protocol = ProtocolKind::Hlrc;
                cfg.commSet = comm;
                cfg.protoSet = proto;
                cfg.numProcs = 16;
                const ExperimentResult r =
                    runExperiment(app.factory, size, cfg, seq);
                grid[ci][pi++] = r.speedup();
                std::printf(" %9.2f", r.speedup());
            }
            std::printf("\n");
            ++ci;
        }
        const double ao = grid[0][0], ab = grid[0][2], bo = grid[2][0],
                     bb = grid[2][2];
        std::printf("  synergy: protocol idealization gains %.0f%% at "
                    "achievable comm,\n           but %.0f%% once "
                    "communication is best (AO->AB vs BO->BB)\n\n",
                    100.0 * (ab - ao) / ao, 100.0 * (bb - bo) / bo);
    }
    return 0;
}
