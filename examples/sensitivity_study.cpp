/**
 * @file
 * A miniature version of the paper's layered study on one application:
 * sweep the communication layer (A->H->B), the protocol layer (O->H->B)
 * and the application layer (original vs. restructured Ocean), and
 * print the 3x3x2 speedup cube plus the synergy deltas.
 *
 * The 18-point cube runs on the parallel sweep engine.
 *
 *   ./build/examples/sensitivity_study [--quick] [--jobs=N]
 */

#include <cstdio>

#include "harness/parallel_sweep.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    opts.apps = {"ocean", "ocean-rowwise"};
    if (!opts.parse(argc, argv))
        return 1;

    ParallelSweepRunner runner(opts);

    for (const AppInfo &app : opts.selectedApps()) {
        for (const char comm : {'A', 'H', 'B'})
            for (const char proto : {'O', 'H', 'B'})
                runner.plan(app, ProtocolKind::Hlrc, comm, proto);
    }
    runner.runPlanned();

    std::printf("Ocean under HLRC, 16 processors: the three layers "
                "(application x\ncommunication x protocol)\n\n");

    for (const AppInfo &app : opts.selectedApps()) {
        std::printf("%s:\n        proto O   proto H   proto B\n",
                    app.name.c_str());
        double grid[3][3];
        int ci = 0;
        for (const char comm : {'A', 'H', 'B'}) {
            std::printf("comm %c", comm);
            int pi = 0;
            for (const char proto : {'O', 'H', 'B'}) {
                const ExperimentResult &r =
                    runner.run(app, ProtocolKind::Hlrc, comm, proto);
                grid[ci][pi++] = r.speedup();
                std::printf(" %9.2f", r.speedup());
            }
            std::printf("\n");
            ++ci;
        }
        const double ao = grid[0][0], ab = grid[0][2], bo = grid[2][0],
                     bb = grid[2][2];
        std::printf("  synergy: protocol idealization gains %.0f%% at "
                    "achievable comm,\n           but %.0f%% once "
                    "communication is best (AO->AB vs BO->BB)\n\n",
                    100.0 * (ab - ao) / ao, 100.0 * (bb - bo) / bo);
    }
    return 0;
}
