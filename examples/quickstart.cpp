/**
 * @file
 * Quickstart: run one application on a simulated 16-node SVM cluster
 * and print its speedup and execution-time breakdown.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "apps/fft.hh"
#include "harness/experiment.hh"

int
main()
{
    using namespace swsm;

    const WorkloadFactory fft = [](SizeClass s) {
        return std::make_unique<FftWorkload>(s);
    };

    // 1. Sequential baseline (1-processor ideal machine).
    const Cycles seq = runSequentialBaseline(fft, SizeClass::Small);
    std::printf("sequential time: %.2f Mcycles\n", seq / 1e6);

    // 2. The base system of the paper: 16 nodes, achievable
    //    communication costs (set A), original protocol costs (set O).
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::Hlrc;
    cfg.commSet = 'A';
    cfg.protoSet = 'O';
    cfg.numProcs = 16;

    const ExperimentResult r =
        runExperiment(fft, SizeClass::Small, cfg, seq);

    std::printf("fft on %d-node HLRC (%s): %.2f Mcycles, speedup %.2f, "
                "verified: %s\n",
                cfg.numProcs, r.config.c_str(),
                r.parallelCycles / 1e6, r.speedup(),
                r.verified ? "yes" : "NO");

    // 3. Execution-time breakdown (the paper's Figure 4 buckets).
    std::printf("\nper-processor average breakdown (Mcycles):\n");
    for (int b = 0; b < numTimeBuckets; ++b) {
        const auto bucket = static_cast<TimeBucket>(b);
        std::printf("  %-14s %8.3f\n", timeBucketName(bucket),
                    r.stats.avgBucket(bucket) / 1e6);
    }
    return r.verified ? 0 : 1;
}
