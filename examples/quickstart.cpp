/**
 * @file
 * Quickstart: run one application on a simulated 16-node SVM cluster
 * and print its speedup and execution-time breakdown.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [--quick] [--jobs=N]
 *
 * The sweep harness (ParallelSweepRunner) computes the sequential
 * baseline and the parallel run; with a single experiment --jobs
 * cannot help, but the same two-phase plan/run pattern scales to the
 * full grids in the bench binaries.
 */

#include <cstdio>

#include "harness/parallel_sweep.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    opts.apps = {"fft"};
    if (!opts.parse(argc, argv))
        return 1;

    ParallelSweepRunner runner(opts);
    const AppInfo &app = findApp("fft");

    // 1. Plan the base system of the paper: 16 nodes, achievable
    //    communication costs (set A), original protocol costs (set O).
    //    The sequential baseline (1-processor ideal machine) is an
    //    implicit dependency and runs first.
    runner.plan(app, ProtocolKind::Hlrc, 'A', 'O');
    runner.runPlanned();

    const Cycles seq = runner.baseline(app);
    std::printf("sequential time: %.2f Mcycles\n", seq / 1e6);

    const ExperimentResult &r =
        runner.run(app, ProtocolKind::Hlrc, 'A', 'O');
    std::printf("fft on %d-node HLRC (%s): %.2f Mcycles, speedup %.2f, "
                "verified: %s\n",
                opts.numProcs, r.config.c_str(),
                r.parallelCycles / 1e6, r.speedup(),
                r.verified ? "yes" : "NO");

    // 2. Execution-time breakdown (the paper's Figure 4 buckets).
    std::printf("\nper-processor average breakdown (Mcycles):\n");
    for (int b = 0; b < numTimeBuckets; ++b) {
        const auto bucket = static_cast<TimeBucket>(b);
        std::printf("  %-14s %8.3f\n", timeBucketName(bucket),
                    r.stats.avgBucket(bucket) / 1e6);
    }
    return r.verified ? 0 : 1;
}
