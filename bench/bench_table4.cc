/**
 * @file
 * Regenerates the paper's Table 4: percentage of time processors spend
 * in protocol activity under HLRC on the base (AO) system, split into
 * diff computation and protocol handler execution (the two components
 * the paper reports; the small remainder is twins/protection/other).
 *
 * Rows run on the parallel sweep engine (--jobs=N); BENCH_table4.json
 * records per-experiment wall-clock.
 */

#include <cstdio>

#include "harness/bench_report.hh"
#include "harness/parallel_sweep.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    BenchReport report("table4", &opts);
    ParallelSweepRunner runner(opts);
    const auto apps = opts.selectedApps();

    for (const AppInfo &app : apps)
        runner.plan(app, ProtocolKind::Hlrc, 'A', 'O');
    runner.runPlanned();

    std::printf("Table 4: %% of time in protocol activity (HLRC, AO "
                "base system, %d procs)\n\n",
                opts.numProcs);
    std::printf("%-16s %8s %9s %9s %9s\n", "Application", "Total%",
                "Handler%", "Diff%", "Other%");

    for (const AppInfo &app : apps) {
        const ExperimentResult &r =
            runner.run(app, ProtocolKind::Hlrc, 'A', 'O');
        const RunStats &s = r.stats;
        const double total = 100.0 * s.protoTimeFraction();
        const double handler =
            100.0 * s.bucketFraction(TimeBucket::ProtoHandler);
        const double diff =
            100.0 * s.bucketFraction(TimeBucket::ProtoDiff);
        std::printf("%-16s %7.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
                    app.name.c_str(), total, handler, diff,
                    total - handler - diff);
    }

    report.addAll(runner);
    report.write();
    return 0;
}
