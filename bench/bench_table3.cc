/**
 * @file
 * Regenerates the paper's Table 3: protocol cost parameter values for
 * the O (original), H (halfway) and B (best) sets.
 */

#include <cstdio>

#include "harness/bench_report.hh"
#include "proto/proto_params.hh"

namespace
{

void
row(const char *name, const swsm::ProtoParams &p)
{
    std::printf("%-14s %9llu+%llu %9llu,%llu %9llu %9llu %8llu+x\n",
                name,
                static_cast<unsigned long long>(p.pageProtectCall),
                static_cast<unsigned long long>(p.pageProtectPerPage),
                static_cast<unsigned long long>(p.diffComparePerWord),
                static_cast<unsigned long long>(p.diffWritePerWord),
                static_cast<unsigned long long>(p.diffApplyPerWord),
                static_cast<unsigned long long>(p.twinPerWord),
                static_cast<unsigned long long>(p.handlerBase));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    BenchReport report("table3", &opts);

    std::printf("Table 3: Protocol cost parameter values (cycles)\n");
    std::printf("%-14s %11s %11s %9s %9s %10s\n", "Set",
                "Protect c+pg", "Diff cmp,wr", "DiffApply", "Twin/wd",
                "Handler");
    row("O (original)", ProtoParams::original());
    row("H (halfway)", ProtoParams::halfway());
    row("B (best)", ProtoParams::best());

    const ProtoParams o = ProtoParams::original();
    std::printf("\nWrite-notice / sharer list traversal: %llu "
                "cycles/element.\nSC handlers are simple and fixed at "
                "%llu cycles across all sets\n(the paper does not vary "
                "SC protocol costs).\n",
                static_cast<unsigned long long>(o.listPerElem),
                static_cast<unsigned long long>(o.scHandlerBase));

    report.write();
    return 0;
}
