/**
 * @file
 * Parallel event-kernel benchmark (host wall-clock, not simulated
 * cycles). Three sections:
 *
 * Apps: runs 16-node Figure 3 configurations (HLRC, comm set A,
 * protocol cost set O) serially and with --sim-threads={2,4}, each
 * repeated N times, and reports min/median host seconds per thread
 * count plus the speedup of the best threaded rep over the best
 * serial rep.
 *
 * Islands: the per-destination lookahead A/B. A 16-node low-latency
 * (comm set X) cluster arranged as two islands of eight with a large
 * inter-island hop cost, run serially, with the legacy global-minimum
 * windows (4 threads) and with the per-destination lookahead matrix
 * (4 threads). The global minimum collapses to the tiny intra-island
 * hop, so the legacy policy barriers once per handful of events; the
 * matrix keeps the wide inter-island edges per destination pair. The
 * windows/widened counters per cell are deterministic (simulation
 * state only), so the section *always* asserts the mechanism — the
 * per-destination cell must run strictly fewer, wider windows than
 * the global-minimum cell — on any host, including single-core CI.
 *
 * Optimism: the machine-level speculation A/B on the same islands
 * geometry. Conservative per-destination windows (optimism 0) vs
 * bounded-optimism speculation (optimism 8) backed by the
 * MachineStateSaver (machine/pdes_saver.hh): the tiny intra-island
 * hop bounds same-island partitions to narrow windows, which
 * speculation runs past. The section always asserts the mechanism
 * (the speculative cell speculates and resolves, the conservative
 * one does not) and emits pdesSpeculated/pdesRollbacks/pdesCommits
 * per cell; with --check-speedup the speculative cell is gated at
 * max(X, 2.0) vs serial, core-count-gated like the other sections.
 *
 * The benchmark *asserts* what the equivalence suite tests: every rep
 * of every cell must produce bit-identical simulated results (total
 * cycles, per-node finish times, every counter outside the
 * host-dependent sim.pdes_* / machine.fastpath_* bookkeeping). A
 * mismatch exits non-zero regardless of flags.
 *
 * Speedup is only *enforced* with --check-speedup[=X] (default 1.5;
 * the islands per-destination cell checks against max(X, 2.0)) and
 * only when the host has at least as many cores as sim threads — on
 * an oversubscribed host the workers time-slice one core and the
 * windowed barriers can only cost, never pay. The ctest smoke run is
 * report-only on speedup, like micro_hotpath_smoke.
 *
 * Writes BENCH_pdes.json (SWSM_BENCH_DIR honored); hostSeconds fields
 * are {"min", "median"} objects, which tools/bench_diff.py
 * understands. Each run entry carries the deterministic window-shape
 * counters (pdesWindows, pdesWindowWidened — compared by
 * bench_diff.py) and the speculation telemetry (pdesSpeculated,
 * pdesRollbacks — ignored, like the sim.pdes_* metrics).
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/app_registry.hh"
#include "harness/experiment.hh"
#include "obs/json_writer.hh"

namespace
{

using namespace swsm;

/** Everything a run produces that the parallel kernel must not change. */
struct Signature
{
    Cycles total = 0;
    std::vector<Cycles> finish;
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    bool operator==(const Signature &) const = default;
};

/** Counters that legitimately depend on how the host executed the run. */
bool
hostDependent(const std::string &name)
{
    return name.rfind("sim.pdes_", 0) == 0 ||
           name.rfind("machine.fastpath_", 0) == 0 ||
           name.rfind("machine.saver_", 0) == 0 ||
           name == "sim.max_pending_events";
}

Signature
signatureOf(const ExperimentResult &r)
{
    Signature s;
    s.total = r.stats.totalCycles;
    s.finish = r.stats.finishTimes;
    for (const auto &[name, value] : r.stats.metrics.counters) {
        if (!hostDependent(name))
            s.counters.emplace_back(name, value);
    }
    return s;
}

std::uint64_t
counterOf(const ExperimentResult &r, const std::string &name)
{
    for (const auto &[n, value] : r.stats.metrics.counters) {
        if (n == name)
            return value;
    }
    return 0;
}

/** The deterministic and speculative parallel-kernel shape counters. */
struct WindowStats
{
    std::uint64_t windows = 0;
    std::uint64_t widened = 0;
    std::uint64_t speculated = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t commits = 0;
};

WindowStats
windowStatsOf(const ExperimentResult &r)
{
    WindowStats w;
    w.windows = counterOf(r, "sim.pdes_windows");
    w.widened = counterOf(r, "sim.pdes_window_widened");
    w.speculated = counterOf(r, "sim.pdes_speculated");
    w.rollbacks = counterOf(r, "sim.pdes_rollbacks");
    w.commits = counterOf(r, "sim.pdes_commits");
    return w;
}

double
minOf(const std::vector<double> &v)
{
    return *std::min_element(v.begin(), v.end());
}

double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

/** One measured cell: N timed reps, one signature, one window shape. */
struct Cell
{
    int threads = 1;
    std::string policy = "perdest";
    int optimism = 0;
    std::vector<double> seconds;
    Signature sig;
    WindowStats windows;
};

struct Options
{
    bool quick = false;
    int reps = 3;
    int procs = 16;
    double checkSpeedup = 0.0; ///< 0 = report-only
    std::vector<std::string> apps;
};

bool
parseArgs(int argc, char **argv, Options &o)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            o.quick = true;
        } else if (arg.rfind("--reps=", 0) == 0) {
            o.reps = std::atoi(arg.c_str() + 7);
        } else if (arg.rfind("--procs=", 0) == 0) {
            o.procs = std::atoi(arg.c_str() + 8);
        } else if (arg == "--check-speedup") {
            o.checkSpeedup = 1.5;
        } else if (arg.rfind("--check-speedup=", 0) == 0) {
            o.checkSpeedup = std::atof(arg.c_str() + 16);
        } else if (arg.rfind("--apps=", 0) == 0) {
            std::string list = arg.substr(7);
            for (std::size_t pos = 0; pos < list.size();) {
                const std::size_t comma = list.find(',', pos);
                const std::size_t end =
                    comma == std::string::npos ? list.size() : comma;
                if (end > pos)
                    o.apps.push_back(list.substr(pos, end - pos));
                pos = end + 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--reps=N] [--procs=N] "
                         "[--apps=a,b] [--check-speedup[=X]]\n",
                         argv[0]);
            return false;
        }
    }
    if (o.reps < 1)
        o.reps = 1;
    if (o.apps.empty())
        o.apps = {"fft", "lu"};
    return true;
}

/** Run one cell: @p reps timed reps of @p factory on @p mp. */
Cell
runCell(const WorkloadFactory &factory, SizeClass size,
        const MachineParams &mp, const std::string &config_name,
        const std::string &label, int reps, bool &ok)
{
    Cell cell;
    cell.threads = mp.simThreads;
    cell.policy = mp.pdesPerDest ? "perdest" : "globalmin";
    cell.optimism = mp.pdesOptimism;
    for (int rep = 0; rep < reps; ++rep) {
        const ExperimentResult r =
            runExperiment(factory, size, mp, config_name, 0);
        cell.seconds.push_back(r.hostSeconds);
        Signature sig = signatureOf(r);
        if (rep == 0) {
            cell.sig = std::move(sig);
            cell.windows = windowStatsOf(r);
        } else if (sig != cell.sig) {
            std::fprintf(stderr,
                         "FAIL: %s is not deterministic across reps\n",
                         label.c_str());
            ok = false;
        }
    }
    return cell;
}

void
writeCellJson(JsonWriter &w, const std::string &section,
              const std::string &app, const std::string &config,
              const Cell &cell, const Cell &serial, double speedup)
{
    w.beginObject();
    w.member("section", section);
    w.member("app", app);
    w.member("config", config);
    w.member("protocol", "HLRC");
    w.member("simThreads", cell.threads);
    w.member("windowPolicy", cell.policy);
    w.member("optimism", cell.optimism);
    w.member("simulatedCycles",
             static_cast<std::uint64_t>(cell.sig.total));
    w.member("equivalent", cell.sig == serial.sig);
    // Deterministic window shape (simulation state only): compared by
    // tools/bench_diff.py. Speculation telemetry is policy bookkeeping
    // and ignored there, like the sim.pdes_* metrics.
    w.member("pdesWindows", cell.windows.windows);
    w.member("pdesWindowWidened", cell.windows.widened);
    w.member("pdesSpeculated", cell.windows.speculated);
    w.member("pdesRollbacks", cell.windows.rollbacks);
    w.member("pdesCommits", cell.windows.commits);
    w.key("hostSeconds");
    w.beginObject();
    w.member("min", minOf(cell.seconds));
    w.member("median", medianOf(cell.seconds));
    w.endObject();
    w.member("speedupVsSerial", speedup);
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return 2;
    const SizeClass size = o.quick ? SizeClass::Tiny : SizeClass::Small;
    const unsigned hw = std::thread::hardware_concurrency();
    const std::vector<int> thread_counts = {1, 2, 4};
    bool ok = true;

    JsonWriter w(2);
    w.beginObject();
    w.member("schema", 2);
    w.member("bench", "pdes");
    w.member("quick", o.quick);
    w.member("reps", o.reps);
    w.member("procs", o.procs);
    w.member("hwConcurrency", static_cast<std::uint64_t>(hw));
    w.key("runs");
    w.beginArray();

    std::printf("%-14s %-10s %8s %10s %10s %9s\n", "app", "policy",
                "threads", "min(s)", "median(s)", "speedup");
    for (const std::string &name : o.apps) {
        const AppInfo &app = findApp(name);
        std::vector<Cell> cells;
        for (const int threads : thread_counts) {
            ExperimentConfig config;
            config.protocol = ProtocolKind::Hlrc;
            config.commSet = 'A';
            config.protoSet = 'O';
            config.numProcs = o.procs;
            config.simThreads = threads;
            MachineParams mp = config.machineParams();
            mp.pdesOptimism = 0; // pinned; the optimism section A/Bs it
            cells.push_back(runCell(
                app.factory, size, mp, config.name(),
                name + " with " + std::to_string(threads) +
                    " sim threads",
                o.reps, ok));
        }

        const Cell &serial = cells.front();
        const double serial_min = minOf(serial.seconds);
        for (const Cell &cell : cells) {
            if (cell.sig != serial.sig) {
                std::fprintf(stderr,
                             "FAIL: %s with %d sim threads diverges "
                             "from the serial kernel (total %llu vs "
                             "%llu)\n",
                             name.c_str(), cell.threads,
                             static_cast<unsigned long long>(
                                 cell.sig.total),
                             static_cast<unsigned long long>(
                                 serial.sig.total));
                ok = false;
            }
            const double best = minOf(cell.seconds);
            const double speedup = best > 0 ? serial_min / best : 0.0;
            std::printf("%-14s %-10s %8d %10.3f %10.3f %8.2fx\n",
                        name.c_str(), cell.policy.c_str(), cell.threads,
                        best, medianOf(cell.seconds), speedup);
            if (o.checkSpeedup > 0 && cell.threads > 1 &&
                hw >= static_cast<unsigned>(cell.threads) &&
                speedup < o.checkSpeedup) {
                std::fprintf(stderr,
                             "FAIL: %s with %d sim threads: %.2fx < "
                             "required %.2fx\n",
                             name.c_str(), cell.threads, speedup,
                             o.checkSpeedup);
                ok = false;
            }
            if (o.checkSpeedup > 0 && cell.threads > 1 &&
                hw < static_cast<unsigned>(cell.threads)) {
                std::printf("  (speedup check skipped: host has %u "
                            "cores for %d workers)\n",
                            hw, cell.threads);
            }
            writeCellJson(w, "apps", name, "AO", cell, serial, speedup);
        }
    }

    // ------------------------------------------------------------------
    // Islands A/B: per-destination lookahead vs the legacy global
    // minimum on an asymmetric low-latency geometry. Comm set X has a
    // ~1-cycle flat hop; two islands of eight put the tiny hop inside
    // each island and a wide one between them. With four partitions
    // (contiguous blocks of four nodes) the global minimum over the
    // partition matrix is the tiny intra-island edge, while the
    // per-destination fixpoint keeps the wide inter-island edges —
    // same simulation, very different barrier counts.
    {
        const std::string island_app = "radix";
        const int island_threads = 4;
        const AppInfo &app = findApp(island_app);
        ExperimentConfig base;
        base.protocol = ProtocolKind::Hlrc;
        base.commSet = 'X';
        base.protoSet = 'O';
        base.numProcs = 16;
        MachineParams mp = base.machineParams();
        mp.comm = mp.comm.withIslands(8, 20000, 1.0);
        mp.pdesOptimism = 0; // pinned; the optimism section A/Bs it
        const std::string config_name = "XO+isl8";

        struct Spec
        {
            int threads;
            bool perDest;
        };
        const Spec specs[] = {
            {1, true}, {island_threads, false}, {island_threads, true}};
        std::vector<Cell> cells;
        for (const Spec &spec : specs) {
            mp.simThreads = spec.threads;
            mp.pdesPerDest = spec.perDest;
            cells.push_back(runCell(
                app.factory, size, mp, config_name,
                island_app + " (" + config_name + ") with " +
                    std::to_string(spec.threads) + " sim threads, " +
                    (spec.perDest ? "perdest" : "globalmin") +
                    " windows",
                o.reps, ok));
        }

        const Cell &serial = cells[0];
        const Cell &globalmin = cells[1];
        const Cell &perdest = cells[2];
        const double serial_min = minOf(serial.seconds);
        for (const Cell &cell : cells) {
            if (cell.sig != serial.sig) {
                std::fprintf(stderr,
                             "FAIL: %s (%s) with %d sim threads and %s "
                             "windows diverges from the serial kernel\n",
                             island_app.c_str(), config_name.c_str(),
                             cell.threads, cell.policy.c_str());
                ok = false;
            }
            const double best = minOf(cell.seconds);
            const double speedup = best > 0 ? serial_min / best : 0.0;
            std::printf("%-14s %-10s %8d %10.3f %10.3f %8.2fx\n",
                        (island_app + "/" + config_name).c_str(),
                        cell.policy.c_str(), cell.threads, best,
                        medianOf(cell.seconds), speedup);
            writeCellJson(w, "islands", island_app, config_name, cell,
                          serial, speedup);
        }
        std::printf("  windows: globalmin %llu (widened %llu), "
                    "perdest %llu (widened %llu)\n",
                    static_cast<unsigned long long>(
                        globalmin.windows.windows),
                    static_cast<unsigned long long>(
                        globalmin.windows.widened),
                    static_cast<unsigned long long>(
                        perdest.windows.windows),
                    static_cast<unsigned long long>(
                        perdest.windows.widened));

        // The mechanism gate is deterministic (window counts depend
        // only on simulation state), so it runs on every host: the
        // matrix must widen windows, i.e. reach the same final time in
        // strictly fewer rounds than the legacy global minimum.
        if (perdest.windows.windows >= globalmin.windows.windows) {
            std::fprintf(stderr,
                         "FAIL: per-destination windows (%llu) not "
                         "fewer than global-minimum windows (%llu) on "
                         "the islands geometry\n",
                         static_cast<unsigned long long>(
                             perdest.windows.windows),
                         static_cast<unsigned long long>(
                             globalmin.windows.windows));
            ok = false;
        }
        if (perdest.windows.widened == 0) {
            std::fprintf(stderr,
                         "FAIL: per-destination cell never widened a "
                         "window past the legacy bound\n");
            ok = false;
        }

        const double island_target = std::max(o.checkSpeedup, 2.0);
        const double best = minOf(perdest.seconds);
        const double speedup = best > 0 ? serial_min / best : 0.0;
        if (o.checkSpeedup > 0 &&
            hw >= static_cast<unsigned>(island_threads) &&
            speedup < island_target) {
            std::fprintf(stderr,
                         "FAIL: per-destination islands cell: %.2fx < "
                         "required %.2fx\n",
                         speedup, island_target);
            ok = false;
        }
        if (o.checkSpeedup > 0 &&
            hw < static_cast<unsigned>(island_threads)) {
            std::printf("  (islands speedup check skipped: host has %u "
                        "cores for %d workers)\n",
                        hw, island_threads);
        }
    }

    // ------------------------------------------------------------------
    // Optimism A/B: conservative windows vs bounded-optimism
    // speculation backed by the machine-level state saver
    // (machine/pdes_saver.hh), on the same islanded X-corner geometry.
    // The ~1-cycle intra-island hop keeps the two partitions inside
    // each island bounding each other to tiny windows even under the
    // per-destination matrix; optimism lets a partition checkpoint and
    // run past that bound, committing when no straggler materializes.
    {
        const std::string app_name = "radix";
        const int spec_threads = 4;
        const int optimism = 8;
        const AppInfo &app = findApp(app_name);
        ExperimentConfig base;
        base.protocol = ProtocolKind::Hlrc;
        base.commSet = 'X';
        base.protoSet = 'O';
        base.numProcs = 16;
        MachineParams mp = base.machineParams();
        mp.comm = mp.comm.withIslands(8, 20000, 1.0);
        mp.pdesPerDest = true;
        const std::string config_name = "XO+isl8";

        struct Spec
        {
            int threads;
            int optimism;
        };
        const Spec specs[] = {
            {1, 0}, {spec_threads, 0}, {spec_threads, optimism}};
        std::vector<Cell> cells;
        for (const Spec &spec : specs) {
            mp.simThreads = spec.threads;
            mp.pdesOptimism = spec.optimism;
            cells.push_back(runCell(
                app.factory, size, mp, config_name,
                app_name + " (" + config_name + ") with " +
                    std::to_string(spec.threads) +
                    " sim threads, optimism " +
                    std::to_string(spec.optimism),
                o.reps, ok));
        }

        const Cell &serial = cells[0];
        const Cell &conservative = cells[1];
        const Cell &speculative = cells[2];
        const double serial_min = minOf(serial.seconds);
        for (const Cell &cell : cells) {
            if (cell.sig != serial.sig) {
                std::fprintf(stderr,
                             "FAIL: %s (%s) with %d sim threads and "
                             "optimism %d diverges from the serial "
                             "kernel\n",
                             app_name.c_str(), config_name.c_str(),
                             cell.threads, cell.optimism);
                ok = false;
            }
            const double best = minOf(cell.seconds);
            const double speedup = best > 0 ? serial_min / best : 0.0;
            std::printf("%-14s opt=%-6d %8d %10.3f %10.3f %8.2fx\n",
                        (app_name + "/" + config_name).c_str(),
                        cell.optimism, cell.threads, best,
                        medianOf(cell.seconds), speedup);
            writeCellJson(w, "optimism", app_name, config_name, cell,
                          serial, speedup);
        }
        std::printf("  speculation: %llu episodes, %llu commits, %llu "
                    "rollbacks (conservative windows %llu, "
                    "speculative windows %llu)\n",
                    static_cast<unsigned long long>(
                        speculative.windows.speculated),
                    static_cast<unsigned long long>(
                        speculative.windows.commits),
                    static_cast<unsigned long long>(
                        speculative.windows.rollbacks),
                    static_cast<unsigned long long>(
                        conservative.windows.windows),
                    static_cast<unsigned long long>(
                        speculative.windows.windows));

        // Mechanism gates, deterministic on any host: the speculative
        // cell must actually speculate and resolve every episode, and
        // the conservative cell must not.
        if (conservative.windows.speculated != 0) {
            std::fprintf(stderr,
                         "FAIL: conservative optimism cell speculated "
                         "%llu times\n",
                         static_cast<unsigned long long>(
                             conservative.windows.speculated));
            ok = false;
        }
        if (speculative.windows.speculated == 0) {
            std::fprintf(stderr,
                         "FAIL: optimism=%d cell never speculated; the "
                         "machine saver is not engaging\n",
                         optimism);
            ok = false;
        }
        if (speculative.windows.commits +
                speculative.windows.rollbacks ==
            0) {
            std::fprintf(stderr,
                         "FAIL: optimism=%d cell speculated but never "
                         "resolved a speculation\n",
                         optimism);
            ok = false;
        }

        const double spec_target = std::max(o.checkSpeedup, 2.0);
        const double best = minOf(speculative.seconds);
        const double speedup = best > 0 ? serial_min / best : 0.0;
        if (o.checkSpeedup > 0 &&
            hw >= static_cast<unsigned>(spec_threads) &&
            speedup < spec_target) {
            std::fprintf(stderr,
                         "FAIL: speculative optimism cell: %.2fx < "
                         "required %.2fx\n",
                         speedup, spec_target);
            ok = false;
        }
        if (o.checkSpeedup > 0 &&
            hw < static_cast<unsigned>(spec_threads)) {
            std::printf("  (optimism speedup check skipped: host has "
                        "%u cores for %d workers)\n",
                        hw, spec_threads);
        }
    }

    w.endArray();
    w.member("equivalent", ok);
    w.endObject();

    std::string dir = ".";
    if (const char *env = std::getenv("SWSM_BENCH_DIR"))
        dir = env;
    const std::string path = dir + "/BENCH_pdes.json";
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fputs(w.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    return ok ? 0 : 1;
}
