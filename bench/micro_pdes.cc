/**
 * @file
 * Parallel event-kernel benchmark (host wall-clock, not simulated
 * cycles). Runs 16-node Figure 3 configurations (HLRC, comm set A,
 * protocol cost set O) serially and with --sim-threads={2,4}, each
 * repeated N times, and reports min/median host seconds per thread
 * count plus the speedup of the best threaded rep over the best
 * serial rep.
 *
 * The benchmark *asserts* what the equivalence suite tests: every rep
 * at every thread count must produce bit-identical simulated results
 * (total cycles, per-node finish times, every counter outside the
 * host-dependent sim.pdes_* / machine.fastpath_* bookkeeping). A
 * mismatch exits non-zero regardless of flags.
 *
 * Speedup is only *enforced* with --check-speedup[=X] (default 1.5)
 * and only when the host has at least as many cores as sim threads —
 * on an oversubscribed host the workers time-slice one core and the
 * windowed barriers can only cost, never pay. The ctest smoke run is
 * report-only, like micro_hotpath_smoke.
 *
 * Writes BENCH_pdes.json (SWSM_BENCH_DIR honored); hostSeconds fields
 * are {"min", "median"} objects, which tools/bench_diff.py understands.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/app_registry.hh"
#include "harness/experiment.hh"
#include "obs/json_writer.hh"

namespace
{

using namespace swsm;

/** Everything a run produces that the parallel kernel must not change. */
struct Signature
{
    Cycles total = 0;
    std::vector<Cycles> finish;
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    bool operator==(const Signature &) const = default;
};

/** Counters that legitimately depend on how the host executed the run. */
bool
hostDependent(const std::string &name)
{
    return name.rfind("sim.pdes_", 0) == 0 ||
           name.rfind("machine.fastpath_", 0) == 0 ||
           name == "sim.max_pending_events";
}

Signature
signatureOf(const ExperimentResult &r)
{
    Signature s;
    s.total = r.stats.totalCycles;
    s.finish = r.stats.finishTimes;
    for (const auto &[name, value] : r.stats.metrics.counters) {
        if (!hostDependent(name))
            s.counters.emplace_back(name, value);
    }
    return s;
}

double
minOf(const std::vector<double> &v)
{
    return *std::min_element(v.begin(), v.end());
}

double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

/** One app × thread-count cell: N timed reps, one signature. */
struct Cell
{
    int threads = 1;
    std::vector<double> seconds;
    Signature sig;
};

struct Options
{
    bool quick = false;
    int reps = 3;
    int procs = 16;
    double checkSpeedup = 0.0; ///< 0 = report-only
    std::vector<std::string> apps;
};

bool
parseArgs(int argc, char **argv, Options &o)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            o.quick = true;
        } else if (arg.rfind("--reps=", 0) == 0) {
            o.reps = std::atoi(arg.c_str() + 7);
        } else if (arg.rfind("--procs=", 0) == 0) {
            o.procs = std::atoi(arg.c_str() + 8);
        } else if (arg == "--check-speedup") {
            o.checkSpeedup = 1.5;
        } else if (arg.rfind("--check-speedup=", 0) == 0) {
            o.checkSpeedup = std::atof(arg.c_str() + 16);
        } else if (arg.rfind("--apps=", 0) == 0) {
            std::string list = arg.substr(7);
            for (std::size_t pos = 0; pos < list.size();) {
                const std::size_t comma = list.find(',', pos);
                const std::size_t end =
                    comma == std::string::npos ? list.size() : comma;
                if (end > pos)
                    o.apps.push_back(list.substr(pos, end - pos));
                pos = end + 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--reps=N] [--procs=N] "
                         "[--apps=a,b] [--check-speedup[=X]]\n",
                         argv[0]);
            return false;
        }
    }
    if (o.reps < 1)
        o.reps = 1;
    if (o.apps.empty())
        o.apps = {"fft", "lu"};
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return 2;
    const SizeClass size = o.quick ? SizeClass::Tiny : SizeClass::Small;
    const unsigned hw = std::thread::hardware_concurrency();
    const std::vector<int> thread_counts = {1, 2, 4};
    bool ok = true;

    JsonWriter w(2);
    w.beginObject();
    w.member("schema", 1);
    w.member("bench", "pdes");
    w.member("quick", o.quick);
    w.member("reps", o.reps);
    w.member("procs", o.procs);
    w.member("hwConcurrency", static_cast<std::uint64_t>(hw));
    w.key("runs");
    w.beginArray();

    std::printf("%-14s %8s %10s %10s %9s\n", "app", "threads",
                "min(s)", "median(s)", "speedup");
    for (const std::string &name : o.apps) {
        const AppInfo &app = findApp(name);
        std::vector<Cell> cells;
        for (const int threads : thread_counts) {
            ExperimentConfig config;
            config.protocol = ProtocolKind::Hlrc;
            config.commSet = 'A';
            config.protoSet = 'O';
            config.numProcs = o.procs;
            config.simThreads = threads;
            Cell cell;
            cell.threads = threads;
            for (int rep = 0; rep < o.reps; ++rep) {
                const ExperimentResult r =
                    runExperiment(app.factory, size, config, 0);
                cell.seconds.push_back(r.hostSeconds);
                Signature sig = signatureOf(r);
                if (rep == 0) {
                    cell.sig = std::move(sig);
                } else if (sig != cell.sig) {
                    std::fprintf(stderr,
                                 "FAIL: %s with %d sim threads is not "
                                 "deterministic across reps\n",
                                 name.c_str(), threads);
                    ok = false;
                }
            }
            cells.push_back(std::move(cell));
        }

        const Cell &serial = cells.front();
        const double serial_min = minOf(serial.seconds);
        for (const Cell &cell : cells) {
            if (cell.sig != serial.sig) {
                std::fprintf(stderr,
                             "FAIL: %s with %d sim threads diverges "
                             "from the serial kernel (total %llu vs "
                             "%llu)\n",
                             name.c_str(), cell.threads,
                             static_cast<unsigned long long>(
                                 cell.sig.total),
                             static_cast<unsigned long long>(
                                 serial.sig.total));
                ok = false;
            }
            const double best = minOf(cell.seconds);
            const double speedup = best > 0 ? serial_min / best : 0.0;
            std::printf("%-14s %8d %10.3f %10.3f %8.2fx\n",
                        name.c_str(), cell.threads, best,
                        medianOf(cell.seconds), speedup);
            if (o.checkSpeedup > 0 && cell.threads > 1 &&
                hw >= static_cast<unsigned>(cell.threads) &&
                speedup < o.checkSpeedup) {
                std::fprintf(stderr,
                             "FAIL: %s with %d sim threads: %.2fx < "
                             "required %.2fx\n",
                             name.c_str(), cell.threads, speedup,
                             o.checkSpeedup);
                ok = false;
            }
            if (o.checkSpeedup > 0 && cell.threads > 1 &&
                hw < static_cast<unsigned>(cell.threads)) {
                std::printf("  (speedup check skipped: host has %u "
                            "cores for %d workers)\n",
                            hw, cell.threads);
            }

            w.beginObject();
            w.member("app", name);
            w.member("config", "AO");
            w.member("protocol", "HLRC");
            w.member("simThreads", cell.threads);
            w.member("simulatedCycles",
                     static_cast<std::uint64_t>(cell.sig.total));
            w.member("equivalent", cell.sig == serial.sig);
            w.key("hostSeconds");
            w.beginObject();
            w.member("min", best);
            w.member("median", medianOf(cell.seconds));
            w.endObject();
            w.member("speedupVsSerial", speedup);
            w.endObject();
        }
    }
    w.endArray();
    w.member("equivalent", ok);
    w.endObject();

    std::string dir = ".";
    if (const char *env = std::getenv("SWSM_BENCH_DIR"))
        dir = env;
    const std::string path = dir + "/BENCH_pdes.json";
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fputs(w.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    return ok ? 0 : 1;
}
