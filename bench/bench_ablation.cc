/**
 * @file
 * Ablations beyond the paper's main grid, checking design choices the
 * paper calls out in passing:
 *
 *  - SC block granularity sweep (the paper: FFT at a fine granularity
 *    performs "substantially worse"; 64 B is best for the irregular
 *    applications);
 *  - SC handler-cost sensitivity (the paper: "changing the cost of
 *    handlers will not really affect performance" for SC);
 *  - HLRC page-size sweep (the coherence-granularity analogue);
 *  - software access-control (instrumentation) cost for SC — the
 *    Shasta-style scenario the paper discusses but does not simulate;
 *  - polling quantum sensitivity (validates the polling-approximation
 *    methodology: results should be stable across quanta).
 *
 * Every point is an independent simulation and runs on the parallel
 * sweep engine (--jobs=N); BENCH_ablation.json records per-experiment
 * wall-clock.
 */

#include <cstdio>
#include <string>

#include "harness/bench_report.hh"
#include "harness/parallel_sweep.hh"

namespace
{

using namespace swsm;

MachineParams
baseParams(const AppInfo &app, ProtocolKind kind, int procs)
{
    ExperimentConfig cfg;
    cfg.protocol = kind;
    cfg.numProcs = procs;
    cfg.blockBytes = app.scBlockBytes;
    return cfg.machineParams();
}

/** Plan one custom-parameter point keyed app/ablation/<tag>. */
void
planPoint(ParallelSweepRunner &runner, const AppInfo &app,
          const std::string &tag, const MachineParams &mp)
{
    const SizeClass size = runner.options().size;
    runner.planCustom(app, app.name + "/ablation/" + tag,
                      [app, mp, size, tag](Cycles seq) {
                          return runExperiment(app.factory, size, mp,
                                               tag, seq);
                      });
}

double
point(ParallelSweepRunner &runner, const AppInfo &app,
      const std::string &tag)
{
    return runner.custom(app.name + "/ablation/" + tag).speedup();
}

} // namespace

int
main(int argc, char **argv)
{
    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    if (opts.apps.empty())
        opts.apps = {"fft", "radix", "barnes", "ocean", "water-nsq"};
    BenchReport report("ablation", &opts);
    ParallelSweepRunner runner(opts);
    const auto apps = opts.selectedApps();

    // Plan every section's grid up front, in the serial print order.
    for (const AppInfo &app : apps) {
        for (const std::uint32_t g : {64u, 256u, 1024u, 4096u}) {
            MachineParams mp =
                baseParams(app, ProtocolKind::Sc, opts.numProcs);
            mp.blockBytes = g;
            planPoint(runner, app, "gran/" + std::to_string(g), mp);
        }
    }
    for (const AppInfo &app : apps) {
        for (const Cycles h : {0u, 200u, 500u, 1000u}) {
            MachineParams mp =
                baseParams(app, ProtocolKind::Sc, opts.numProcs);
            mp.proto.scHandlerBase = h;
            planPoint(runner, app, "handler/" + std::to_string(h), mp);
        }
    }
    for (const AppInfo &app : apps) {
        for (const std::uint32_t pg : {1024u, 4096u, 16384u}) {
            MachineParams mp =
                baseParams(app, ProtocolKind::Hlrc, opts.numProcs);
            mp.pageBytes = pg;
            planPoint(runner, app, "page/" + std::to_string(pg), mp);
        }
    }
    for (const AppInfo &app : apps) {
        for (const Cycles c : {0u, 5u, 15u}) {
            MachineParams mp =
                baseParams(app, ProtocolKind::Sc, opts.numProcs);
            mp.accessCheckCycles = c;
            planPoint(runner, app, "access/" + std::to_string(c), mp);
        }
    }
    for (const AppInfo &app : apps) {
        for (const Cycles ic : {0u, 400u, 4000u, 20000u}) {
            MachineParams mp =
                baseParams(app, ProtocolKind::Hlrc, opts.numProcs);
            mp.comm.interruptCost = ic;
            planPoint(runner, app, "interrupt/" + std::to_string(ic), mp);
        }
    }
    for (const AppInfo &app : apps) {
        for (const Cycles q : {250u, 1000u, 4000u}) {
            MachineParams mp =
                baseParams(app, ProtocolKind::Hlrc, opts.numProcs);
            mp.quantum = q;
            planPoint(runner, app, "quantum/" + std::to_string(q), mp);
        }
    }
    runner.runPlanned();

    // 1. SC granularity sweep.
    std::printf("Ablation 1: SC block granularity (speedups, %d "
                "procs)\n\n",
                opts.numProcs);
    std::printf("%-16s %8s %8s %8s %8s %8s %8s\n", "Application", "64B",
                "256B", "1KB", "4KB", "best", "paper");
    for (const AppInfo &app : apps) {
        double best = 0;
        std::uint32_t best_g = 0;
        std::printf("%-16s", app.name.c_str());
        for (const std::uint32_t g : {64u, 256u, 1024u, 4096u}) {
            const double sp =
                point(runner, app, "gran/" + std::to_string(g));
            std::printf(" %8.2f", sp);
            if (sp > best) {
                best = sp;
                best_g = g;
            }
        }
        std::printf(" %7uB %7uB\n", best_g, app.scBlockBytes);
    }

    // 2. SC handler cost sensitivity.
    std::printf("\nAblation 2: SC handler cost (paper: little "
                "effect)\n\n");
    std::printf("%-16s %8s %8s %8s %8s\n", "Application", "0cyc",
                "200cyc", "500cyc", "1000cyc");
    for (const AppInfo &app : apps) {
        std::printf("%-16s", app.name.c_str());
        for (const Cycles h : {0u, 200u, 500u, 1000u})
            std::printf(" %8.2f",
                        point(runner, app,
                              "handler/" + std::to_string(h)));
        std::printf("\n");
    }

    // 3. HLRC page size.
    std::printf("\nAblation 3: HLRC page size\n\n");
    std::printf("%-16s %8s %8s %8s\n", "Application", "1KB", "4KB",
                "16KB");
    for (const AppInfo &app : apps) {
        std::printf("%-16s", app.name.c_str());
        for (const std::uint32_t pg : {1024u, 4096u, 16384u})
            std::printf(" %8.2f",
                        point(runner, app,
                              "page/" + std::to_string(pg)));
        std::printf("\n");
    }

    // 4. SC software access control (Shasta-style instrumentation).
    std::printf("\nAblation 4: SC per-reference access-control cost "
                "(0 = the paper's hardware assumption)\n\n");
    std::printf("%-16s %8s %8s %8s\n", "Application", "0cyc", "5cyc",
                "15cyc");
    for (const AppInfo &app : apps) {
        std::printf("%-16s", app.name.c_str());
        for (const Cycles c : {0u, 5u, 15u})
            std::printf(" %8.2f",
                        point(runner, app,
                              "access/" + std::to_string(c)));
        std::printf("\n");
    }

    // 5. Interrupt-driven vs. polled message handling. The paper chose
    // polling because measured interrupt costs (tens of microseconds)
    // dominate the communication architecture when used.
    std::printf("\nAblation 6 (run first for cache warmth: numbering "
                "cosmetic): interrupts vs. polling (HLRC)\n\n");
    std::printf("%-16s %8s %9s %9s %9s\n", "Application", "polled",
                "int 2us", "int 20us", "int 100us");
    for (const AppInfo &app : apps) {
        std::printf("%-16s", app.name.c_str());
        for (const Cycles ic : {0u, 400u, 4000u, 20000u})
            std::printf(" %8.2f",
                        point(runner, app,
                              "interrupt/" + std::to_string(ic)));
        std::printf("\n");
    }

    // 5. Polling quantum.
    std::printf("\nAblation 5: polling quantum (methodology check — "
                "results should be stable)\n\n");
    std::printf("%-16s %8s %8s %8s\n", "Application", "250cyc",
                "1000cyc", "4000cyc");
    for (const AppInfo &app : apps) {
        std::printf("%-16s", app.name.c_str());
        for (const Cycles q : {250u, 1000u, 4000u})
            std::printf(" %8.2f",
                        point(runner, app,
                              "quantum/" + std::to_string(q)));
        std::printf("\n");
    }

    report.addAll(runner);
    report.write();
    return 0;
}
