/**
 * @file
 * Regenerates the paper's Figure 5: the impact of varying ONE
 * communication parameter at a time (host overhead, NI occupancy, I/O
 * bus bandwidth, message handling cost) from its achievable value to
 * its best value, for both protocols. The crossover behaviour — SC
 * depends mostly on overhead and occupancy, HLRC mostly on bandwidth —
 * is the paper's headline per-parameter conclusion.
 */

#include <cstdio>
#include <functional>

#include "harness/sweep.hh"
#include "sim/log.hh"

namespace
{

using namespace swsm;

struct ParamAxis
{
    const char *name;
    std::function<void(CommParams &, double f)> apply; // f: 0=A, 1=best
};

/** Run one app/protocol with a customized communication setting. */
double
speedupWith(const AppInfo &app, ProtocolKind kind, int procs,
            SizeClass size, Cycles seq, const CommParams &comm)
{
    ExperimentConfig cfg;
    cfg.protocol = kind;
    cfg.numProcs = procs;
    cfg.blockBytes = app.scBlockBytes;
    MachineParams mp = cfg.machineParams();
    mp.comm = comm;

    auto workload = app.factory(size);
    Cluster cluster(mp);
    workload->setup(cluster);
    cluster.run([&](Thread &t) { workload->body(t); });
    if (!workload->verify(cluster))
        SWSM_WARN("%s failed verification in fig5", app.name.c_str());
    return static_cast<double>(seq) /
           static_cast<double>(cluster.stats().totalCycles);
}

} // namespace

int
main(int argc, char **argv)
{
    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    SweepRunner runner(opts);

    const CommParams a = CommParams::achievable();
    const CommParams b = CommParams::best();
    const std::vector<ParamAxis> axes = {
        {"host overhead",
         [&](CommParams &p, double f) {
             p.hostOverhead = static_cast<Cycles>(
                 a.hostOverhead * (1 - f) + b.hostOverhead * f);
         }},
        {"NI occupancy",
         [&](CommParams &p, double f) {
             p.niOccupancyPerPacket = static_cast<Cycles>(
                 a.niOccupancyPerPacket * (1 - f) +
                 b.niOccupancyPerPacket * f);
         }},
        {"I/O bandwidth",
         [&](CommParams &p, double f) {
             p.ioBusBytesPerCycle = a.ioBusBytesPerCycle * (1 - f) +
                 b.ioBusBytesPerCycle * f;
         }},
        {"handling cost",
         [&](CommParams &p, double f) {
             p.handlingCost = static_cast<Cycles>(
                 a.handlingCost * (1 - f) + b.handlingCost * f);
         }},
    };

    std::printf("Figure 5: Individual communication parameters "
                "(achievable -> halfway -> best,\nothers fixed at "
                "achievable; %d procs). Entries are speedups.\n\n",
                opts.numProcs);
    std::printf("%-16s %-5s %-14s %7s %7s %7s %9s\n", "Application",
                "Proto", "Parameter", "A", "half", "best", "gain%");

    for (const AppInfo &app : opts.selectedApps()) {
        const Cycles seq = runner.baseline(app);
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            const double base =
                runner.run(app, kind, 'A', 'O').speedup();
            for (const ParamAxis &axis : axes) {
                double sp[2];
                int i = 0;
                for (const double f : {0.5, 1.0}) {
                    CommParams comm = a;
                    axis.apply(comm, f);
                    sp[i++] = speedupWith(app, kind, opts.numProcs,
                                          opts.size, seq, comm);
                }
                std::printf("%-16s %-5s %-14s %7.2f %7.2f %7.2f %8.1f%%\n",
                            app.name.c_str(), protocolKindName(kind),
                            axis.name, base, sp[0], sp[1],
                            100.0 * (sp[1] - base) / base);
            }
        }
    }
    return 0;
}
