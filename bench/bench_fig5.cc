/**
 * @file
 * Regenerates the paper's Figure 5: the impact of varying ONE
 * communication parameter at a time (host overhead, NI occupancy, I/O
 * bus bandwidth, message handling cost) from its achievable value to
 * its best value, for both protocols. The crossover behaviour — SC
 * depends mostly on overhead and occupancy, HLRC mostly on bandwidth —
 * is the paper's headline per-parameter conclusion.
 *
 * The per-parameter points are independent simulations, so they run on
 * the parallel sweep engine as custom experiments (--jobs=N);
 * BENCH_fig5.json records per-experiment wall-clock.
 */

#include <cstdio>
#include <functional>
#include <string>

#include "harness/bench_report.hh"
#include "harness/parallel_sweep.hh"

namespace
{

using namespace swsm;

struct ParamAxis
{
    const char *name;
    std::function<void(CommParams &, double f)> apply; // f: 0=A, 1=best
};

std::string
pointKey(const AppInfo &app, ProtocolKind kind, const char *axis,
         double f)
{
    return app.name + "/" + protocolKindName(kind) + "/fig5/" + axis +
           "/" + (f == 1.0 ? "best" : "half");
}

/** Plan one app/protocol point with a customized communication setting. */
void
planPoint(ParallelSweepRunner &runner, const AppInfo &app,
          ProtocolKind kind, const ParamAxis &axis, double f,
          const CommParams &base)
{
    const SweepOptions &opts = runner.options();
    CommParams comm = base;
    axis.apply(comm, f);
    runner.planCustom(
        app, pointKey(app, kind, axis.name, f),
        [app, kind, opts, comm](Cycles seq) {
            ExperimentConfig cfg;
            cfg.protocol = kind;
            cfg.numProcs = opts.numProcs;
            cfg.blockBytes = app.scBlockBytes;
            MachineParams mp = cfg.machineParams();
            mp.comm = comm;
            return runExperiment(app.factory, opts.size, mp, cfg.name(),
                                 seq);
        });
}

} // namespace

int
main(int argc, char **argv)
{
    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    BenchReport report("fig5", &opts);
    ParallelSweepRunner runner(opts);
    const auto apps = opts.selectedApps();

    const CommParams a = CommParams::achievable();
    const CommParams b = CommParams::best();
    const std::vector<ParamAxis> axes = {
        {"host overhead",
         [&](CommParams &p, double f) {
             p.hostOverhead = static_cast<Cycles>(
                 a.hostOverhead * (1 - f) + b.hostOverhead * f);
         }},
        {"NI occupancy",
         [&](CommParams &p, double f) {
             p.niOccupancyPerPacket = static_cast<Cycles>(
                 a.niOccupancyPerPacket * (1 - f) +
                 b.niOccupancyPerPacket * f);
         }},
        {"I/O bandwidth",
         [&](CommParams &p, double f) {
             p.ioBusBytesPerCycle = a.ioBusBytesPerCycle * (1 - f) +
                 b.ioBusBytesPerCycle * f;
         }},
        {"handling cost",
         [&](CommParams &p, double f) {
             p.handlingCost = static_cast<Cycles>(
                 a.handlingCost * (1 - f) + b.handlingCost * f);
         }},
    };

    for (const AppInfo &app : apps) {
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            runner.plan(app, kind, 'A', 'O');
            for (const ParamAxis &axis : axes) {
                for (const double f : {0.5, 1.0})
                    planPoint(runner, app, kind, axis, f, a);
            }
        }
    }
    runner.runPlanned();

    std::printf("Figure 5: Individual communication parameters "
                "(achievable -> halfway -> best,\nothers fixed at "
                "achievable; %d procs). Entries are speedups.\n\n",
                opts.numProcs);
    std::printf("%-16s %-5s %-14s %7s %7s %7s %9s\n", "Application",
                "Proto", "Parameter", "A", "half", "best", "gain%");

    for (const AppInfo &app : apps) {
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            const double base = runner.run(app, kind, 'A', 'O').speedup();
            for (const ParamAxis &axis : axes) {
                double sp[2];
                int i = 0;
                for (const double f : {0.5, 1.0}) {
                    sp[i++] =
                        runner.custom(pointKey(app, kind, axis.name, f))
                            .speedup();
                }
                std::printf(
                    "%-16s %-5s %-14s %7.2f %7.2f %7.2f %8.1f%%\n",
                    app.name.c_str(), protocolKindName(kind), axis.name,
                    base, sp[0], sp[1], 100.0 * (sp[1] - base) / base);
            }
        }
    }

    report.addAll(runner);
    report.write();
    return 0;
}
