/**
 * @file
 * Processor-count scaling (an extension beyond the paper's fixed
 * 16-node cluster): speedups at 2..32 processors on the base system
 * for both protocols. Exposes which applications' bottlenecks are
 * latency (flat curves), serialization (early saturation), or capacity
 * (superlinear cache regions).
 *
 * Every (app, protocol, procs) point is an independent simulation and
 * runs on the parallel sweep engine (--jobs=N); BENCH_scaling.json
 * records per-experiment wall-clock.
 */

#include <cstdio>
#include <string>

#include "harness/bench_report.hh"
#include "harness/parallel_sweep.hh"

namespace
{

using namespace swsm;

std::string
pointKey(const AppInfo &app, ProtocolKind kind, int procs)
{
    return app.name + "/" + protocolKindName(kind) + "/scaling/" +
           std::to_string(procs) + "p";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    if (opts.apps.empty())
        opts.apps = {"fft", "lu", "ocean-rowwise", "water-nsq",
                     "volrend-restr"};
    BenchReport report("scaling", &opts);
    ParallelSweepRunner runner(opts);
    const auto apps = opts.selectedApps();

    const int counts[] = {2, 4, 8, 16, 32};

    for (const AppInfo &app : apps) {
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            for (const int p : counts) {
                const SizeClass size = opts.size;
                runner.planCustom(
                    app, pointKey(app, kind, p),
                    [app, kind, p, size](Cycles seq) {
                        ExperimentConfig cfg;
                        cfg.protocol = kind;
                        cfg.numProcs = p;
                        cfg.blockBytes = app.scBlockBytes;
                        return runExperiment(app.factory, size, cfg,
                                             seq);
                    });
            }
        }
    }
    runner.runPlanned();

    std::printf("Scaling on the base (AO) system. Entries are "
                "speedups vs. 1 processor.\n\n");
    std::printf("%-16s %-5s", "Application", "Proto");
    for (const int p : counts)
        std::printf(" %6dp", p);
    std::printf("\n");

    for (const AppInfo &app : apps) {
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            std::printf("%-16s %-5s", app.name.c_str(),
                        protocolKindName(kind));
            for (const int p : counts) {
                std::printf(
                    " %7.2f",
                    runner.custom(pointKey(app, kind, p)).speedup());
            }
            std::printf("\n");
        }
    }

    report.addAll(runner);
    report.write();
    return 0;
}
