/**
 * @file
 * Processor-count scaling (an extension beyond the paper's fixed
 * 16-node cluster): speedups at 2..32 processors on the base system
 * for both protocols. Exposes which applications' bottlenecks are
 * latency (flat curves), serialization (early saturation), or capacity
 * (superlinear cache regions).
 */

#include <cstdio>

#include "harness/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    if (opts.apps.empty())
        opts.apps = {"fft", "lu", "ocean-rowwise", "water-nsq",
                     "volrend-restr"};

    const int counts[] = {2, 4, 8, 16, 32};

    std::printf("Scaling on the base (AO) system. Entries are "
                "speedups vs. 1 processor.\n\n");
    std::printf("%-16s %-5s", "Application", "Proto");
    for (const int p : counts)
        std::printf(" %6dp", p);
    std::printf("\n");

    for (const AppInfo &app : opts.selectedApps()) {
        // One shared sequential baseline across processor counts.
        const Cycles seq = runSequentialBaseline(app.factory, opts.size);
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            std::printf("%-16s %-5s", app.name.c_str(),
                        protocolKindName(kind));
            for (const int p : counts) {
                ExperimentConfig cfg;
                cfg.protocol = kind;
                cfg.numProcs = p;
                cfg.blockBytes = app.scBlockBytes;
                const ExperimentResult r =
                    runExperiment(app.factory, opts.size, cfg, seq);
                std::printf(" %7.2f", r.speedup());
            }
            std::printf("\n");
        }
    }
    return 0;
}
