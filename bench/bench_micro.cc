/**
 * @file
 * Micro-benchmarks of the simulator's own hot paths (simulation speed,
 * not simulated performance): event queue throughput, fiber switching,
 * cache model lookups, and end-to-end message latency simulation.
 */

#include <benchmark/benchmark.h>

#include "fiber/fiber.hh"
#include "harness/bench_report.hh"
#include "mem/cache_model.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"

namespace
{

void
BM_EventQueueSchedule(benchmark::State &state)
{
    swsm::EventQueue eq;
    std::uint64_t t = 0;
    for (auto _ : state) {
        eq.schedule(++t, [] {});
        eq.step();
    }
}
BENCHMARK(BM_EventQueueSchedule);

void
BM_EventQueueScheduleCapture(benchmark::State &state)
{
    // A capture the size of the kernel's network-pipeline lambdas;
    // stays within EventFn's inline storage (no allocation per event).
    swsm::EventQueue eq;
    std::uint64_t t = 0;
    std::uint64_t sink = 0;
    std::uint64_t a = 1, b = 2, c = 3, d = 4, e = 5, f = 6;
    for (auto _ : state) {
        eq.schedule(++t, [&sink, a, b, c, d, e, f] {
            sink += a + b + c + d + e + f;
        });
        eq.step();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleCapture);

void
BM_EventQueueBurst(benchmark::State &state)
{
    // Schedule a burst then drain: exercises heap sift costs at depth.
    swsm::EventQueue eq;
    std::uint64_t base = 0;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            eq.schedule(base + 1 + ((i * 37) % 97), [] {});
        while (eq.step()) {
        }
        base = eq.now();
    }
}
BENCHMARK(BM_EventQueueBurst);

void
BM_FiberSwitch(benchmark::State &state)
{
    swsm::Fiber f([] {
        for (;;)
            swsm::Fiber::yield();
    });
    for (auto _ : state)
        f.resume();
}
BENCHMARK(BM_FiberSwitch);

void
BM_CacheAccess(benchmark::State &state)
{
    swsm::MemoryParams mp;
    swsm::CacheModel cache(mp);
    std::uint64_t a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, false));
        a = (a + 4096 + 32) & 0xfffff;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_SimulatedMessage(benchmark::State &state)
{
    swsm::EventQueue eq;
    swsm::Network net(eq, 2, swsm::CommParams::achievable());
    for (auto _ : state) {
        bool done = false;
        net.send(0, 1, 4096, eq.now(), [&](swsm::Cycles) { done = true; });
        while (!done)
            eq.step();
    }
}
BENCHMARK(BM_SimulatedMessage);

} // namespace

int
main(int argc, char **argv)
{
    swsm::BenchReport report("micro");
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    report.write();
    return 0;
}
