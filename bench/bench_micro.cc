/**
 * @file
 * Micro-benchmarks of the simulator's own hot paths (simulation speed,
 * not simulated performance): event queue throughput, fiber switching,
 * cache model lookups, and end-to-end message latency simulation.
 */

#include <benchmark/benchmark.h>

#include "fiber/fiber.hh"
#include "mem/cache_model.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"

namespace
{

void
BM_EventQueueSchedule(benchmark::State &state)
{
    swsm::EventQueue eq;
    std::uint64_t t = 0;
    for (auto _ : state) {
        eq.schedule(++t, [] {});
        eq.step();
    }
}
BENCHMARK(BM_EventQueueSchedule);

void
BM_FiberSwitch(benchmark::State &state)
{
    swsm::Fiber f([] {
        for (;;)
            swsm::Fiber::yield();
    });
    for (auto _ : state)
        f.resume();
}
BENCHMARK(BM_FiberSwitch);

void
BM_CacheAccess(benchmark::State &state)
{
    swsm::MemoryParams mp;
    swsm::CacheModel cache(mp);
    std::uint64_t a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, false));
        a = (a + 4096 + 32) & 0xfffff;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_SimulatedMessage(benchmark::State &state)
{
    swsm::EventQueue eq;
    swsm::Network net(eq, 2, swsm::CommParams::achievable());
    for (auto _ : state) {
        bool done = false;
        net.send(0, 1, 4096, eq.now(), [&](swsm::Cycles) { done = true; });
        while (!done)
            eq.step();
    }
}
BENCHMARK(BM_SimulatedMessage);

} // namespace

BENCHMARK_MAIN();
