/**
 * @file
 * Regenerates the paper's Figure 3: parallel speedups (vs. the best
 * sequential run) for every application version under both protocols
 * and the layer-cost configurations.
 *
 * Columns are ⟨comm set⟩⟨protocol cost set⟩ per the paper's naming:
 * XB = "better-than-best" communication + zero protocol costs,
 * AO = the base achievable system, WO = 2x-worse communication.
 * SC runs use the per-application best block granularity and have no
 * protocol-cost variants (fixed simple handlers), as in the paper.
 *
 * The whole grid is executed by the parallel sweep engine before any
 * row is printed, so --jobs=N changes wall-clock time but never the
 * (byte-identical) table. A BENCH_fig3.json wall-clock report is
 * written alongside.
 *
 * Options: --quick / --medium (problem size), --full (adds the halfway
 * configurations), --apps=..., --procs=N, --jobs=N.
 */

#include <cstdio>

#include "harness/bench_report.hh"
#include "harness/parallel_sweep.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    BenchReport report("fig3", &opts);
    ParallelSweepRunner runner(opts);
    const auto configs = figure3Configs(opts.full);
    const auto apps = opts.selectedApps();

    // The grid definition is shared with the sweep server
    // (serve/server.hh) so a grid served from the memo cache is this
    // exact experiment set.
    for (const GridItem &item : figure3Grid(opts)) {
        if (item.ideal)
            runner.planIdeal(item.app);
        else
            runner.plan(item.app, item.kind, item.commSet,
                        item.protoSet);
    }
    runner.runPlanned();

    std::printf("Figure 3: Speedups on %d processors "
                "(vs. sequential; Ideal = algorithmic limit)\n\n",
                opts.numProcs);
    std::printf("%-16s %-5s %6s", "Application", "Proto", "Ideal");
    for (const auto &[c, p] : configs)
        std::printf(" %5c%c", c, p);
    std::printf("\n");

    for (const AppInfo &app : apps) {
        const double ideal = runner.runIdeal(app).speedup();
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            std::printf("%-16s %-5s %6.2f", app.name.c_str(),
                        protocolKindName(kind), ideal);
            for (const auto &[c, p] : configs) {
                if (kind == ProtocolKind::Sc && p != 'O' && p != 'B') {
                    std::printf(" %6s", "-");
                    continue;
                }
                const ExperimentResult &r = runner.run(app, kind, c, p);
                std::printf(" %6.2f", r.speedup());
            }
            std::printf("\n");
        }
    }
    std::printf("\n(SC protocol-cost variants collapse onto the O "
                "column: the paper fixes SC's simple handler cost.)\n");

    report.addAll(runner);
    report.write();
    return 0;
}
