/**
 * @file
 * Regenerates the paper's layer-synergy analysis (§4.5): the
 * percentage improvement each system layer delivers, before and after
 * the other layer has been improved, plus the effect of application
 * restructuring at each system level. The paper's signature result is
 * that improving one layer *increases* the other's impact:
 * e.g. AO->AB < BO->BB and AO->BO < AB->BB.
 *
 * The grid runs on the parallel sweep engine (--jobs=N);
 * BENCH_synergy.json records per-experiment wall-clock.
 */

#include <cstdio>

#include "harness/bench_report.hh"
#include "harness/parallel_sweep.hh"

namespace
{

double
pct(double from, double to)
{
    return 100.0 * (to - from) / from;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    BenchReport report("synergy", &opts);
    ParallelSweepRunner runner(opts);
    const auto apps = opts.selectedApps();

    for (const AppInfo &app : apps) {
        for (const auto &[c, p] :
             {std::pair{'A', 'O'}, std::pair{'A', 'B'},
              std::pair{'B', 'O'}, std::pair{'B', 'B'},
              std::pair{'H', 'O'}, std::pair{'H', 'B'}})
            runner.plan(app, ProtocolKind::Hlrc, c, p);
    }
    for (const AppInfo &app : apps) {
        if (!app.restructured)
            continue;
        const AppInfo &orig = findApp(app.originalOf);
        bool selected = false;
        for (const AppInfo &sel : apps)
            selected |= sel.name == orig.name;
        if (!selected)
            continue;
        for (const auto &[c, p] : {std::pair{'A', 'O'},
                                   std::pair{'B', 'O'},
                                   std::pair{'B', 'B'}}) {
            runner.plan(orig, ProtocolKind::Hlrc, c, p);
            runner.plan(app, ProtocolKind::Hlrc, c, p);
        }
    }
    runner.runPlanned();

    std::printf("Layer synergy under HLRC (%d procs). Entries are %% "
                "speedup improvements.\n\n",
                opts.numProcs);
    std::printf("%-16s | %8s %8s | %8s %8s | %9s %9s\n", "Application",
                "AO->AB", "BO->BB", "AO->BO", "AB->BB", "AO->HO",
                "HO->HB");
    std::printf("  protocol-cost gain before/after comm | comm gain "
                "before/after protocol | halfway\n");
    std::printf("%.*s\n", 78,
                "-----------------------------------------------------"
                "-------------------------");

    for (const AppInfo &app : apps) {
        const double ao =
            runner.run(app, ProtocolKind::Hlrc, 'A', 'O').speedup();
        const double ab =
            runner.run(app, ProtocolKind::Hlrc, 'A', 'B').speedup();
        const double bo =
            runner.run(app, ProtocolKind::Hlrc, 'B', 'O').speedup();
        const double bb =
            runner.run(app, ProtocolKind::Hlrc, 'B', 'B').speedup();
        const double ho =
            runner.run(app, ProtocolKind::Hlrc, 'H', 'O').speedup();
        const double hb =
            runner.run(app, ProtocolKind::Hlrc, 'H', 'B').speedup();

        std::printf("%-16s | %7.1f%% %7.1f%% | %7.1f%% %7.1f%% | "
                    "%8.1f%% %8.1f%%\n",
                    app.name.c_str(), pct(ao, ab), pct(bo, bb),
                    pct(ao, bo), pct(ab, bb), pct(ao, ho), pct(ho, hb));
    }

    // Restructuring interaction: how much restructuring helps at each
    // system level (the application layer of the synergy story).
    std::printf("\nApplication restructuring gain at each system level "
                "(HLRC):\n");
    std::printf("%-16s | %9s %9s %9s\n", "Original", "at AO", "at BO",
                "at BB");
    for (const AppInfo &app : apps) {
        if (!app.restructured)
            continue;
        const AppInfo &orig = findApp(app.originalOf);
        bool selected = false;
        for (const AppInfo &sel : apps)
            selected |= sel.name == orig.name;
        if (!selected)
            continue;
        double gains[3];
        int i = 0;
        for (const auto &[c, p] : {std::pair{'A', 'O'},
                                   std::pair{'B', 'O'},
                                   std::pair{'B', 'B'}}) {
            const double o =
                runner.run(orig, ProtocolKind::Hlrc, c, p).speedup();
            const double r =
                runner.run(app, ProtocolKind::Hlrc, c, p).speedup();
            gains[i++] = pct(o, r);
        }
        std::printf("%-16s | %8.1f%% %8.1f%% %8.1f%%\n",
                    orig.name.c_str(), gains[0], gains[1], gains[2]);
    }

    report.addAll(runner);
    report.write();
    return 0;
}
