/**
 * @file
 * Regenerates the paper's Table 5: the per-application HLRC summary —
 * whether communication or protocol costs matter more from the base
 * system, whether improving one layer fully (BO) beats improving both
 * halfway (HB), and the cheapest configuration that reaches a 10-fold
 * speedup on 16 processors (or "none", meaning application
 * restructuring or better-than-best communication is required).
 *
 * The whole ladder is planned up front so it can run on the parallel
 * sweep engine (--jobs=N); BENCH_table5.json records per-experiment
 * wall-clock.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_report.hh"
#include "harness/parallel_sweep.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    BenchReport report("table5", &opts);
    ParallelSweepRunner runner(opts);
    const auto apps = opts.selectedApps();

    // Cheapest-first ladder of improvements over the base system.
    const std::vector<std::pair<char, char>> ladder = {
        {'A', 'H'}, {'A', 'B'}, {'H', 'O'}, {'H', 'H'}, {'H', 'B'},
        {'B', 'O'}, {'B', 'H'}, {'B', 'B'}, {'X', 'B'},
    };
    const double target = 10.0;

    // The serial runner stopped at the first ladder rung reaching the
    // target; the parallel engine plans every rung (results identical,
    // a little extra work buys the parallelism).
    for (const AppInfo &app : apps) {
        runner.plan(app, ProtocolKind::Hlrc, 'A', 'O');
        for (const auto &[c, p] : ladder)
            runner.plan(app, ProtocolKind::Hlrc, c, p);
    }
    runner.runPlanned();

    std::printf("Table 5: HLRC per-application summary (%d procs, "
                "target %.0f-fold speedup)\n\n",
                opts.numProcs, target);
    std::printf("%-16s %6s | %-12s | %-10s | %-14s\n", "Application",
                "AO", "more important", "BO vs HB", "first >=10x");
    std::printf("%.*s\n", 70,
                "---------------------------------------------------"
                "-------------------");

    for (const AppInfo &app : apps) {
        const double ao =
            runner.run(app, ProtocolKind::Hlrc, 'A', 'O').speedup();
        const double ab =
            runner.run(app, ProtocolKind::Hlrc, 'A', 'B').speedup();
        const double bo =
            runner.run(app, ProtocolKind::Hlrc, 'B', 'O').speedup();
        const double hb =
            runner.run(app, ProtocolKind::Hlrc, 'H', 'B').speedup();

        const char *important =
            bo > ab * 1.05 ? "comm" : (ab > bo * 1.05 ? "protocol"
                                                      : "similar");
        const char *bo_vs_hb =
            bo > hb * 1.05 ? "BO" : (hb > bo * 1.05 ? "HB" : "tie");

        std::string first = "none";
        for (const auto &[c, p] : ladder) {
            if (runner.run(app, ProtocolKind::Hlrc, c, p).speedup() >=
                target) {
                first = std::string(1, c) + std::string(1, p);
                break;
            }
        }
        std::printf("%-16s %6.2f | %-12s | %-10s | %-14s\n",
                    app.name.c_str(), ao, important, bo_vs_hb,
                    first.c_str());
    }
    std::printf("\n'none' = even best/best is insufficient; the paper's "
                "conclusion is that such\napplications need "
                "restructuring or better-than-best bandwidth (XB).\n");

    report.addAll(runner);
    report.write();
    return 0;
}
