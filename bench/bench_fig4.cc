/**
 * @file
 * Regenerates the paper's Figure 4: execution time breakdowns (average
 * over processors) for the main configurations of Figure 3. Times are
 * normalized to the AO (base) total of each application/protocol so
 * bars are comparable within a row group, and the buckets are the
 * paper's: busy, local cache stall, data wait, lock wait, barrier
 * wait, and protocol time (handlers / diffs / twins / protection).
 *
 * The grid runs on the parallel sweep engine (--jobs=N) before
 * printing; BENCH_fig4.json records per-experiment wall-clock.
 */

#include <cstdio>

#include "harness/bench_report.hh"
#include "harness/parallel_sweep.hh"

namespace
{

using namespace swsm;

double
bucketMcycles(const RunStats &s, TimeBucket b)
{
    return s.avgBucket(b) / 1e6;
}

double
protoMcycles(const RunStats &s)
{
    double total = 0;
    for (int b = 0; b < numTimeBuckets; ++b) {
        if (isProtoBucket(static_cast<TimeBucket>(b)))
            total += s.avgBucket(static_cast<TimeBucket>(b)) / 1e6;
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    BenchReport report("fig4", &opts);
    ParallelSweepRunner runner(opts);
    const auto configs = figure3Configs(opts.full);
    const auto apps = opts.selectedApps();

    for (const AppInfo &app : apps) {
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            for (const auto &[c, p] : configs) {
                if (kind == ProtocolKind::Sc && p != 'O' && p != 'B')
                    continue;
                runner.plan(app, kind, c, p);
            }
        }
    }
    runner.runPlanned();

    std::printf("Figure 4: Execution time breakdowns "
                "(Mcycles, averaged over %d processors)\n\n",
                opts.numProcs);
    std::printf("%-16s %-5s %-4s %8s %8s %8s %8s %8s %8s %9s\n",
                "Application", "Proto", "Cfg", "busy", "lstall", "dwait",
                "lock", "barrier", "proto", "total");

    for (const AppInfo &app : apps) {
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            for (const auto &[c, p] : configs) {
                if (kind == ProtocolKind::Sc && p != 'O' && p != 'B')
                    continue;
                const ExperimentResult &r = runner.run(app, kind, c, p);
                const RunStats &s = r.stats;
                double total = 0;
                for (int b = 0; b < numTimeBuckets; ++b)
                    total += s.avgBucket(static_cast<TimeBucket>(b));
                std::printf(
                    "%-16s %-5s %c%c   %8.2f %8.2f %8.2f %8.2f %8.2f "
                    "%8.2f %9.2f\n",
                    app.name.c_str(), protocolKindName(kind), c, p,
                    bucketMcycles(s, TimeBucket::Busy),
                    bucketMcycles(s, TimeBucket::StallLocal),
                    bucketMcycles(s, TimeBucket::DataWait),
                    bucketMcycles(s, TimeBucket::LockWait),
                    bucketMcycles(s, TimeBucket::BarrierWait),
                    protoMcycles(s), total / 1e6);
            }
            std::printf("\n");
        }
    }

    report.addAll(runner);
    report.write();
    return 0;
}
