/**
 * @file
 * Regenerates the paper's Table 1: applications, problem sizes, and the
 * (quoted, not simulated) Shasta instrumentation costs. Our scaled
 * default sizes and the per-application SC granularities are included
 * because the simulation grids use them.
 *
 * No simulations run here; the standard sweep options (--jobs=N, ...)
 * are accepted for uniformity and BENCH_table1.json records the
 * (trivial) wall-clock.
 */

#include <cstdio>

#include "apps/app_registry.hh"
#include "harness/bench_report.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    BenchReport report("table1", &opts);

    std::printf("Table 1: Applications, problem sizes and "
                "instrumentation costs\n");
    std::printf("%-16s %-16s %-18s %10s %10s\n", "Application",
                "Paper size", "Our default size", "SC gran.", "Instr.%");
    std::printf("%.*s\n", 74,
                "----------------------------------------------------"
                "----------------------");
    for (const AppInfo &app : appRegistry()) {
        if (app.restructured)
            continue;
        std::printf("%-16s %-16s %-18s %8uB %9d%%\n", app.name.c_str(),
                    app.paperSize.c_str(), app.defaultSize.c_str(),
                    app.scBlockBytes, app.shastaInstrPct);
    }
    std::printf("\nRestructured versions (application-layer variable):\n");
    for (const AppInfo &app : appRegistry()) {
        if (!app.restructured)
            continue;
        std::printf("  %-16s restructures %-12s\n", app.name.c_str(),
                    app.originalOf.c_str());
    }

    report.write();
    return 0;
}
