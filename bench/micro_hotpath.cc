/**
 * @file
 * Simulator data-path microbenchmark (host throughput, not simulated
 * cycles). Measures the three hot loops the fast-path overhaul
 * targets, each with the optimization on and off:
 *
 *  - accesses/sec: single-word shared reads and writes through a
 *    Thread on a warmed HLRC page, fast-path TLB vs the full
 *    virtual-dispatch page-table walk (SWSM_FASTPATH=0 equivalent);
 *  - diff-words/sec: twin comparison of a mostly-clean page, chunked
 *    64-bit scan with dirty-chunk skip vs the reference word loop;
 *  - events/sec: raw event-kernel schedule+dispatch throughput.
 *
 * Every measurement runs --reps=N times (default 3); throughputs are
 * computed from the fastest rep and the JSON carries per-measurement
 * host seconds as {"min", "median"} objects, so one descheduled rep
 * cannot skew a comparison between two reports.
 *
 * Writes BENCH_hotpath.json (SWSM_BENCH_DIR honored). The ratios are
 * host-dependent, so the ctest smoke run is report-only: it exercises
 * the loops and the JSON path but never fails on throughput.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "machine/cluster.hh"
#include "machine/fast_path.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "obs/json_writer.hh"
#include "proto/hlrc/diff.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace swsm;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Host seconds for 2*iters single-word shared accesses on a warmed
 * page. The simulated work is identical with the fast path on and off;
 * only how the access resolves on the host differs.
 */
double
accessSeconds(bool fast_path, std::uint64_t iters)
{
    MachineParams mp;
    mp.numProcs = 2;
    mp.protocol = ProtocolKind::Hlrc;
    mp.fastPath = fast_path;
    // A huge quantum keeps the timed loop out of the yield machinery,
    // so the measurement isolates the access path itself.
    mp.quantum = Cycles{1} << 40;
    Cluster c(mp);
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint32_t> a =
        SharedArray<std::uint32_t>::homedAt(c, 1024, 1);
    for (int i = 0; i < 1024; ++i)
        a.init(c, i, i);
    double elapsed = 0;
    c.run([&](Thread &t) {
        if (t.id() == 0) {
            // Warm: fetch the pages and enable write once.
            std::uint64_t sum = a.get(t, 0);
            a.put(t, 0, 1);
            const auto start = std::chrono::steady_clock::now();
            for (std::uint64_t i = 0; i < iters; ++i) {
                sum += a.get(t, i & 1023);
                a.put(t, (i + 512) & 1023,
                      static_cast<std::uint32_t>(sum));
            }
            elapsed = secondsSince(start);
            if (sum == 0)
                std::fprintf(stderr, "unexpected zero sum\n");
        }
        t.barrier(bar);
    });
    return elapsed;
}

/**
 * Host seconds for reps twin-diff scans of a mostly-clean page (both
 * scans cover the same simulated wordsPerPage; the chunked one just
 * skips clean chunks on the host).
 */
double
diffSeconds(bool chunked, std::uint64_t reps)
{
    const std::uint32_t page_bytes = 4096;
    const std::uint32_t shift = hlrcdiff::chunkShift(page_bytes);
    std::vector<std::uint8_t> twin(page_bytes), cur(page_bytes);
    for (std::uint32_t i = 0; i < page_bytes; ++i)
        twin[i] = cur[i] = static_cast<std::uint8_t>(i * 131);
    // One dirty word in one chunk: the mostly-clean page a
    // single-word-per-interval writer produces.
    cur[600] ^= 0xff;
    const std::uint64_t dirty = FastPath::dirtyBits(600, 4, shift);

    hlrcdiff::DiffWords out;
    out.reserve(8);
    std::size_t found = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
        out.clear();
        if (chunked) {
            hlrcdiff::scanChunks(cur.data(), twin.data(), page_bytes,
                                 shift, dirty, out);
        } else {
            hlrcdiff::scanFull(cur.data(), twin.data(), page_bytes,
                               out);
        }
        found += out.size();
    }
    const double elapsed = secondsSince(start);
    if (found != reps)
        std::fprintf(stderr, "diff scan found %zu words, expected %llu\n",
                     found, static_cast<unsigned long long>(reps));
    return elapsed;
}

/** Host seconds to schedule + dispatch total events. */
double
eventSeconds(std::uint64_t total)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    // A self-rescheduling chain of four events keeps the heap small
    // and the loop dominated by schedule/dispatch cost.
    std::function<void()> tick = [&] {
        if (++fired < total)
            eq.scheduleAfter(1, [&] { tick(); });
    };
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 4; ++i)
        eq.scheduleAfter(1, [&] { tick(); });
    eq.run();
    return secondsSince(start);
}

/** Min/median over a measurement's reps. */
struct Reps
{
    std::vector<double> seconds;

    double
    min() const
    {
        return *std::min_element(seconds.begin(), seconds.end());
    }

    double
    median() const
    {
        std::vector<double> v = seconds;
        std::sort(v.begin(), v.end());
        const std::size_t n = v.size();
        return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
    }
};

template <typename Fn>
Reps
measure(int reps, Fn fn)
{
    Reps r;
    r.seconds.reserve(reps);
    for (int i = 0; i < reps; ++i)
        r.seconds.push_back(fn());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
            reps = std::atoi(argv[i] + 7);
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--reps=N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;
    const std::uint64_t access_iters = quick ? 200'000 : 2'000'000;
    const std::uint64_t diff_reps = quick ? 20'000 : 200'000;
    const std::uint64_t event_total = quick ? 500'000 : 5'000'000;
    const std::uint32_t words = 4096 / wordBytes;

    const Reps acc_fast =
        measure(reps, [&] { return accessSeconds(true, access_iters); });
    const Reps acc_slow =
        measure(reps, [&] { return accessSeconds(false, access_iters); });
    const Reps diff_chunked =
        measure(reps, [&] { return diffSeconds(true, diff_reps); });
    const Reps diff_wordwise =
        measure(reps, [&] { return diffSeconds(false, diff_reps); });
    const Reps events =
        measure(reps, [&] { return eventSeconds(event_total); });

    // Throughputs from the fastest rep of each measurement.
    const double work = static_cast<double>(2 * access_iters);
    const double af = work / acc_fast.min();
    const double as = work / acc_slow.min();
    const double diff_work = static_cast<double>(diff_reps) * words;
    const double dc = diff_work / diff_chunked.min();
    const double dw = diff_work / diff_wordwise.min();
    const double ev = static_cast<double>(event_total) / events.min();

    std::printf("accesses/sec   fastpath %.3e  slowpath %.3e  (%.2fx)\n",
                af, as, af / as);
    std::printf("diff words/sec chunked  %.3e  wordwise %.3e  (%.2fx)\n",
                dc, dw, dc / dw);
    std::printf("events/sec     %.3e   (best of %d reps)\n", ev, reps);

    double min_total = 0, median_total = 0;
    for (const Reps *r :
         {&acc_fast, &acc_slow, &diff_chunked, &diff_wordwise, &events}) {
        min_total += r->min();
        median_total += r->median();
    }

    JsonWriter w(2);
    w.beginObject();
    w.member("schema", 2);
    w.member("bench", "hotpath");
    w.member("quick", quick);
    w.member("reps", reps);
    w.key("accesses_per_sec");
    w.beginObject();
    w.member("fastpath", af);
    w.member("slowpath", as);
    w.member("speedup", af / as);
    w.endObject();
    w.key("diff_words_per_sec");
    w.beginObject();
    w.member("chunked", dc);
    w.member("wordwise", dw);
    w.member("speedup", dc / dw);
    w.endObject();
    w.member("events_per_sec", ev);
    w.key("hostSeconds");
    w.beginObject();
    w.member("min", min_total);
    w.member("median", median_total);
    w.endObject();
    w.endObject();

    std::string dir = ".";
    if (const char *env = std::getenv("SWSM_BENCH_DIR"))
        dir = env;
    const std::string path = dir + "/BENCH_hotpath.json";
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fputs(w.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    return 0;
}
