/**
 * @file
 * Simulator data-path microbenchmark (host throughput, not simulated
 * cycles). Measures the three hot loops the fast-path overhaul
 * targets, each with the optimization on and off:
 *
 *  - accesses/sec: single-word shared reads and writes through a
 *    Thread on a warmed HLRC page, fast-path TLB vs the full
 *    virtual-dispatch page-table walk (SWSM_FASTPATH=0 equivalent);
 *  - diff-words/sec: twin comparison of a mostly-clean page, chunked
 *    64-bit scan with dirty-chunk skip vs the reference word loop;
 *  - events/sec: raw event-kernel schedule+dispatch throughput.
 *
 * Writes BENCH_hotpath.json (SWSM_BENCH_DIR honored). The ratios are
 * host-dependent, so the ctest smoke run is report-only: it exercises
 * the loops and the JSON path but never fails on throughput.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "machine/cluster.hh"
#include "machine/fast_path.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "obs/json_writer.hh"
#include "proto/hlrc/diff.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace swsm;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Host throughput of single-word shared accesses on a warmed page.
 * The simulated work is identical with the fast path on and off; only
 * how the access resolves on the host differs.
 */
double
accessesPerSec(bool fast_path, std::uint64_t iters)
{
    MachineParams mp;
    mp.numProcs = 2;
    mp.protocol = ProtocolKind::Hlrc;
    mp.fastPath = fast_path;
    // A huge quantum keeps the timed loop out of the yield machinery,
    // so the measurement isolates the access path itself.
    mp.quantum = Cycles{1} << 40;
    Cluster c(mp);
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint32_t> a =
        SharedArray<std::uint32_t>::homedAt(c, 1024, 1);
    for (int i = 0; i < 1024; ++i)
        a.init(c, i, i);
    double elapsed = 0;
    c.run([&](Thread &t) {
        if (t.id() == 0) {
            // Warm: fetch the pages and enable write once.
            std::uint64_t sum = a.get(t, 0);
            a.put(t, 0, 1);
            const auto start = std::chrono::steady_clock::now();
            for (std::uint64_t i = 0; i < iters; ++i) {
                sum += a.get(t, i & 1023);
                a.put(t, (i + 512) & 1023,
                      static_cast<std::uint32_t>(sum));
            }
            elapsed = secondsSince(start);
            if (sum == 0)
                std::fprintf(stderr, "unexpected zero sum\n");
        }
        t.barrier(bar);
    });
    return static_cast<double>(2 * iters) / elapsed;
}

/**
 * Host throughput of twin diffing on a mostly-clean page, expressed
 * as effective page words processed per second (both scans cover the
 * same simulated wordsPerPage; the chunked one just skips clean
 * chunks on the host).
 */
double
diffWordsPerSec(bool chunked, std::uint64_t reps)
{
    const std::uint32_t page_bytes = 4096;
    const std::uint32_t words = page_bytes / wordBytes;
    const std::uint32_t shift = hlrcdiff::chunkShift(page_bytes);
    std::vector<std::uint8_t> twin(page_bytes), cur(page_bytes);
    for (std::uint32_t i = 0; i < page_bytes; ++i)
        twin[i] = cur[i] = static_cast<std::uint8_t>(i * 131);
    // One dirty word in one chunk: the mostly-clean page a
    // single-word-per-interval writer produces.
    cur[600] ^= 0xff;
    const std::uint64_t dirty = FastPath::dirtyBits(600, 4, shift);

    hlrcdiff::DiffWords out;
    out.reserve(8);
    std::size_t found = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
        out.clear();
        if (chunked) {
            hlrcdiff::scanChunks(cur.data(), twin.data(), page_bytes,
                                 shift, dirty, out);
        } else {
            hlrcdiff::scanFull(cur.data(), twin.data(), page_bytes,
                               out);
        }
        found += out.size();
    }
    const double elapsed = secondsSince(start);
    if (found != reps)
        std::fprintf(stderr, "diff scan found %zu words, expected %llu\n",
                     found, static_cast<unsigned long long>(reps));
    return static_cast<double>(reps) * words / elapsed;
}

/** Raw event-kernel throughput: schedule + dispatch per event. */
double
eventsPerSec(std::uint64_t total)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    // A self-rescheduling chain of four events keeps the heap small
    // and the loop dominated by schedule/dispatch cost.
    std::function<void()> tick = [&] {
        if (++fired < total)
            eq.scheduleAfter(1, [&] { tick(); });
    };
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 4; ++i)
        eq.scheduleAfter(1, [&] { tick(); });
    eq.run();
    return static_cast<double>(fired) / secondsSince(start);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else {
            std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
            return 2;
        }
    }
    const std::uint64_t access_iters = quick ? 200'000 : 2'000'000;
    const std::uint64_t diff_reps = quick ? 20'000 : 200'000;
    const std::uint64_t event_total = quick ? 500'000 : 5'000'000;

    const auto start = std::chrono::steady_clock::now();
    const double acc_fast = accessesPerSec(true, access_iters);
    const double acc_slow = accessesPerSec(false, access_iters);
    const double diff_chunked = diffWordsPerSec(true, diff_reps);
    const double diff_wordwise = diffWordsPerSec(false, diff_reps);
    const double events = eventsPerSec(event_total);
    const double host_seconds = secondsSince(start);

    std::printf("accesses/sec   fastpath %.3e  slowpath %.3e  (%.2fx)\n",
                acc_fast, acc_slow, acc_fast / acc_slow);
    std::printf("diff words/sec chunked  %.3e  wordwise %.3e  (%.2fx)\n",
                diff_chunked, diff_wordwise, diff_chunked / diff_wordwise);
    std::printf("events/sec     %.3e\n", events);

    JsonWriter w(2);
    w.beginObject();
    w.member("schema", 1);
    w.member("bench", "hotpath");
    w.member("quick", quick);
    w.key("accesses_per_sec");
    w.beginObject();
    w.member("fastpath", acc_fast);
    w.member("slowpath", acc_slow);
    w.member("speedup", acc_fast / acc_slow);
    w.endObject();
    w.key("diff_words_per_sec");
    w.beginObject();
    w.member("chunked", diff_chunked);
    w.member("wordwise", diff_wordwise);
    w.member("speedup", diff_chunked / diff_wordwise);
    w.endObject();
    w.member("events_per_sec", events);
    w.member("hostSeconds", host_seconds);
    w.endObject();

    std::string dir = ".";
    if (const char *env = std::getenv("SWSM_BENCH_DIR"))
        dir = env;
    const std::string path = dir + "/BENCH_hotpath.json";
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fputs(w.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    return 0;
}
