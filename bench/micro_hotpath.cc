/**
 * @file
 * Simulator data-path microbenchmark (host throughput, not simulated
 * cycles). Measures the hot loops of the data path, each with the
 * optimization on and off:
 *
 *  - accesses/sec: single-word shared reads and writes through a
 *    Thread on a warmed HLRC page, fast-path TLB vs the full
 *    virtual-dispatch page-table walk (SWSM_FASTPATH=0 equivalent);
 *  - diff_scan words/sec: dense full-page twin comparison, dispatched
 *    SIMD kernel vs the forced-scalar reference (setLevel A/B in one
 *    process);
 *  - diff_scan_sparse words/sec: chunk-skipping scan of a mostly-clean
 *    page vs the dense sweep (the dirty-chunk bitmap accelerator);
 *  - diff_apply words/sec: writing a diff's words into a home page,
 *    SIMD run bursts vs the scalar word loop;
 *  - twin_create words/sec: page copy into a twin buffer, SIMD vs
 *    scalar;
 *  - events/sec: raw event-kernel schedule+dispatch throughput.
 *
 * The "SIMD" arm of each A/B uses the ambient dispatch level, so a run
 * under SWSM_SIMD=0 reports scalar-vs-scalar (ratio ~1) and the two CI
 * artifacts cover both host modes. Every measurement runs --reps=N
 * times (default 3); throughputs come from the fastest rep and the
 * JSON carries per-section host seconds as {"min", "median"} objects
 * under "hostSeconds" (schema 3), so one descheduled rep cannot skew a
 * comparison between two reports.
 *
 * Writes BENCH_hotpath.json (SWSM_BENCH_DIR honored). The ratios are
 * host-dependent, so the ctest smoke run is report-only: it exercises
 * the loops and the JSON path but never fails on throughput.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "machine/cluster.hh"
#include "machine/fast_path.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "mem/aligned.hh"
#include "mem/simd.hh"
#include "obs/json_writer.hh"
#include "proto/hlrc/diff.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace swsm;

constexpr std::uint32_t pageBytes = 4096;
constexpr std::uint32_t wordsPerPage = pageBytes / wordBytes;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** A page-sized pattern buffer, 32-byte aligned like the real pools. */
AlignedBytes
patternPage(std::uint8_t salt)
{
    AlignedBytes b(pageBytes);
    for (std::uint32_t i = 0; i < pageBytes; ++i)
        b[i] = static_cast<std::uint8_t>(i * 131 + salt);
    return b;
}

/**
 * Host seconds for 2*iters single-word shared accesses on a warmed
 * page. The simulated work is identical with the fast path on and off;
 * only how the access resolves on the host differs.
 */
double
accessSeconds(bool fast_path, std::uint64_t iters)
{
    MachineParams mp;
    mp.numProcs = 2;
    mp.protocol = ProtocolKind::Hlrc;
    mp.fastPath = fast_path;
    // A huge quantum keeps the timed loop out of the yield machinery,
    // so the measurement isolates the access path itself.
    mp.quantum = Cycles{1} << 40;
    Cluster c(mp);
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint32_t> a =
        SharedArray<std::uint32_t>::homedAt(c, 1024, 1);
    for (int i = 0; i < 1024; ++i)
        a.init(c, i, i);
    double elapsed = 0;
    c.run([&](Thread &t) {
        if (t.id() == 0) {
            // Warm: fetch the pages and enable write once.
            std::uint64_t sum = a.get(t, 0);
            a.put(t, 0, 1);
            const auto start = std::chrono::steady_clock::now();
            for (std::uint64_t i = 0; i < iters; ++i) {
                sum += a.get(t, i & 1023);
                a.put(t, (i + 512) & 1023,
                      static_cast<std::uint32_t>(sum));
            }
            elapsed = secondsSince(start);
            if (sum == 0)
                std::fprintf(stderr, "unexpected zero sum\n");
        }
        t.barrier(bar);
    });
    return elapsed;
}

/**
 * Host seconds for reps dense full-page diff scans at @p level. Eight
 * scattered dirty words: the compare path dominates, the refine path
 * stays exercised.
 */
double
diffScanSeconds(simd::Level level, std::uint64_t reps)
{
    const AlignedBytes twin = patternPage(0);
    AlignedBytes cur = twin;
    for (std::uint32_t w = 0; w < 8; ++w)
        cur[(w * 509 + 13) * 4 % pageBytes] ^= 0xff;

    const simd::Level prev = simd::activeLevel();
    simd::setLevel(level);
    hlrcdiff::DiffWords out;
    out.reserve(16);
    std::size_t found = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
        out.clear();
        hlrcdiff::scanFull(cur.data(), twin.data(), pageBytes, out);
        found += out.size();
    }
    const double elapsed = secondsSince(start);
    simd::setLevel(prev);
    if (found != 8 * reps)
        std::fprintf(stderr, "diff scan found %zu words, expected %llu\n",
                     found, static_cast<unsigned long long>(8 * reps));
    return elapsed;
}

/**
 * Host seconds for reps twin-diff scans of a mostly-clean page (both
 * scans cover the same simulated wordsPerPage; the chunked one just
 * skips clean chunks on the host).
 */
double
diffScanSparseSeconds(bool chunked, std::uint64_t reps)
{
    const std::uint32_t shift = hlrcdiff::chunkShift(pageBytes);
    const AlignedBytes twin = patternPage(0);
    AlignedBytes cur = twin;
    // One dirty word in one chunk: the mostly-clean page a
    // single-word-per-interval writer produces.
    cur[600] ^= 0xff;
    const std::uint64_t dirty = FastPath::dirtyBits(600, 4, shift);

    hlrcdiff::DiffWords out;
    out.reserve(8);
    std::size_t found = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
        out.clear();
        if (chunked) {
            hlrcdiff::scanChunks(cur.data(), twin.data(), pageBytes,
                                 shift, dirty, out);
        } else {
            hlrcdiff::scanFull(cur.data(), twin.data(), pageBytes,
                               out);
        }
        found += out.size();
    }
    const double elapsed = secondsSince(start);
    if (found != reps)
        std::fprintf(stderr, "diff scan found %zu words, expected %llu\n",
                     found, static_cast<unsigned long long>(reps));
    return elapsed;
}

/**
 * Host seconds for reps diff applies at @p level: one 256-word run
 * plus 16 scattered singles, the common shape of a sequential writer
 * with a few stray updates.
 */
double
diffApplySeconds(simd::Level level, std::uint64_t reps,
                 std::size_t &words_per_rep)
{
    AlignedBytes home = patternPage(1);
    simd::DiffWords words;
    for (std::uint32_t w = 64; w < 64 + 256; ++w)
        words.emplace_back(w, w * 2654435761u);
    for (std::uint32_t i = 0; i < 16; ++i)
        words.emplace_back(384 + i * 40, i * 40503u);
    words_per_rep = words.size();

    const simd::Level prev = simd::activeLevel();
    simd::setLevel(level);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r)
        simd::applyWords(home.data(), words.data(), words.size());
    const double elapsed = secondsSince(start);
    simd::setLevel(prev);
    if (home[64 * 4] == home[65 * 4] && home[0] == 0)
        std::fprintf(stderr, "unexpected apply result\n");
    return elapsed;
}

/** Host seconds for reps page copies (the twin create) at @p level. */
double
twinCreateSeconds(simd::Level level, std::uint64_t reps)
{
    const AlignedBytes src = patternPage(2);
    AlignedBytes dst(pageBytes);

    const simd::Level prev = simd::activeLevel();
    simd::setLevel(level);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r)
        simd::copyBytes(dst.data(), src.data(), pageBytes);
    const double elapsed = secondsSince(start);
    simd::setLevel(prev);
    if (dst != src)
        std::fprintf(stderr, "twin copy mismatch\n");
    return elapsed;
}

/** Host seconds to schedule + dispatch total events. */
double
eventSeconds(std::uint64_t total)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    // A self-rescheduling chain of four events keeps the heap small
    // and the loop dominated by schedule/dispatch cost.
    std::function<void()> tick = [&] {
        if (++fired < total)
            eq.scheduleAfter(1, [&] { tick(); });
    };
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 4; ++i)
        eq.scheduleAfter(1, [&] { tick(); });
    eq.run();
    return secondsSince(start);
}

/** Min/median over a measurement's reps. */
struct Reps
{
    std::vector<double> seconds;

    double
    min() const
    {
        return *std::min_element(seconds.begin(), seconds.end());
    }

    double
    median() const
    {
        std::vector<double> v = seconds;
        std::sort(v.begin(), v.end());
        const std::size_t n = v.size();
        return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
    }
};

template <typename Fn>
Reps
measure(int reps, Fn fn)
{
    Reps r;
    r.seconds.reserve(reps);
    for (int i = 0; i < reps; ++i)
        r.seconds.push_back(fn());
    return r;
}

/** "hostSeconds" section: {"min": ..., "median": ...} over both arms. */
void
writeSection(JsonWriter &w, const char *name,
             std::initializer_list<const Reps *> parts)
{
    double min_total = 0, median_total = 0;
    for (const Reps *r : parts) {
        min_total += r->min();
        median_total += r->median();
    }
    w.key(name);
    w.beginObject();
    w.member("min", min_total);
    w.member("median", median_total);
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
            reps = std::atoi(argv[i] + 7);
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--reps=N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;
    const std::uint64_t access_iters = quick ? 200'000 : 2'000'000;
    const std::uint64_t diff_reps = quick ? 20'000 : 200'000;
    const std::uint64_t apply_reps = quick ? 50'000 : 500'000;
    const std::uint64_t copy_reps = quick ? 50'000 : 500'000;
    const std::uint64_t event_total = quick ? 500'000 : 5'000'000;

    // "SIMD" arm = the ambient dispatch level (honors SWSM_SIMD), so
    // the scalar-forced run's artifact documents the scalar host mode.
    const simd::Level vec = simd::activeLevel();
    const simd::Level sca = simd::Level::Scalar;

    const Reps acc_fast =
        measure(reps, [&] { return accessSeconds(true, access_iters); });
    const Reps acc_slow =
        measure(reps, [&] { return accessSeconds(false, access_iters); });
    const Reps scan_simd =
        measure(reps, [&] { return diffScanSeconds(vec, diff_reps); });
    const Reps scan_scalar =
        measure(reps, [&] { return diffScanSeconds(sca, diff_reps); });
    const Reps sparse_chunked = measure(
        reps, [&] { return diffScanSparseSeconds(true, diff_reps); });
    const Reps sparse_wordwise = measure(
        reps, [&] { return diffScanSparseSeconds(false, diff_reps); });
    std::size_t apply_words = 0;
    const Reps apply_simd = measure(reps, [&] {
        return diffApplySeconds(vec, apply_reps, apply_words);
    });
    const Reps apply_scalar = measure(reps, [&] {
        return diffApplySeconds(sca, apply_reps, apply_words);
    });
    const Reps twin_simd =
        measure(reps, [&] { return twinCreateSeconds(vec, copy_reps); });
    const Reps twin_scalar =
        measure(reps, [&] { return twinCreateSeconds(sca, copy_reps); });
    const Reps events =
        measure(reps, [&] { return eventSeconds(event_total); });

    // Throughputs from the fastest rep of each measurement.
    const double work = static_cast<double>(2 * access_iters);
    const double af = work / acc_fast.min();
    const double as = work / acc_slow.min();
    const double scan_work =
        static_cast<double>(diff_reps) * wordsPerPage;
    const double sv = scan_work / scan_simd.min();
    const double ss = scan_work / scan_scalar.min();
    const double dc = scan_work / sparse_chunked.min();
    const double dw = scan_work / sparse_wordwise.min();
    const double apply_work =
        static_cast<double>(apply_reps) * apply_words;
    const double av = apply_work / apply_simd.min();
    const double asx = apply_work / apply_scalar.min();
    const double copy_work =
        static_cast<double>(copy_reps) * wordsPerPage;
    const double tv = copy_work / twin_simd.min();
    const double ts = copy_work / twin_scalar.min();
    const double ev = static_cast<double>(event_total) / events.min();

    std::printf("simd level %s (scalar A/B in-process)\n",
                simd::levelName(vec));
    std::printf("accesses/sec      fastpath %.3e  slowpath %.3e  (%.2fx)\n",
                af, as, af / as);
    std::printf("diff scan w/sec   simd     %.3e  scalar   %.3e  (%.2fx)\n",
                sv, ss, sv / ss);
    std::printf("sparse scan w/sec chunked  %.3e  wordwise %.3e  (%.2fx)\n",
                dc, dw, dc / dw);
    std::printf("diff apply w/sec  simd     %.3e  scalar   %.3e  (%.2fx)\n",
                av, asx, av / asx);
    std::printf("twin create w/sec simd     %.3e  scalar   %.3e  (%.2fx)\n",
                tv, ts, tv / ts);
    std::printf("events/sec        %.3e   (best of %d reps)\n", ev, reps);

    JsonWriter w(2);
    w.beginObject();
    w.member("schema", 3);
    w.member("bench", "hotpath");
    w.member("quick", quick);
    w.member("reps", reps);
    w.member("simd_level", simd::levelName(vec));
    w.key("accesses_per_sec");
    w.beginObject();
    w.member("fastpath", af);
    w.member("slowpath", as);
    w.member("speedup", af / as);
    w.endObject();
    w.key("diff_scan_words_per_sec");
    w.beginObject();
    w.member("simd", sv);
    w.member("scalar", ss);
    w.member("speedup", sv / ss);
    w.endObject();
    w.key("diff_scan_sparse_words_per_sec");
    w.beginObject();
    w.member("chunked", dc);
    w.member("wordwise", dw);
    w.member("speedup", dc / dw);
    w.endObject();
    w.key("diff_apply_words_per_sec");
    w.beginObject();
    w.member("simd", av);
    w.member("scalar", asx);
    w.member("speedup", av / asx);
    w.endObject();
    w.key("twin_create_words_per_sec");
    w.beginObject();
    w.member("simd", tv);
    w.member("scalar", ts);
    w.member("speedup", tv / ts);
    w.endObject();
    w.member("events_per_sec", ev);
    w.key("hostSeconds");
    w.beginObject();
    writeSection(w, "access", {&acc_fast, &acc_slow});
    writeSection(w, "diff_scan", {&scan_simd, &scan_scalar});
    writeSection(w, "diff_scan_sparse",
                 {&sparse_chunked, &sparse_wordwise});
    writeSection(w, "diff_apply", {&apply_simd, &apply_scalar});
    writeSection(w, "twin_create", {&twin_simd, &twin_scalar});
    writeSection(w, "events", {&events});
    w.endObject();
    w.endObject();

    std::string dir = ".";
    if (const char *env = std::getenv("SWSM_BENCH_DIR"))
        dir = env;
    const std::string path = dir + "/BENCH_hotpath.json";
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fputs(w.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    return 0;
}
