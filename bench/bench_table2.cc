/**
 * @file
 * Regenerates the paper's Table 2: communication parameter sets.
 * Values are cycles of the modeled 1-IPC 200 MHz processor; the
 * microsecond / MB/s equivalents at 200 MHz are printed alongside, as
 * the paper does.
 */

#include <cstdio>

#include "harness/bench_report.hh"
#include "net/comm_params.hh"

namespace
{

void
row(const char *name, const swsm::CommParams &p)
{
    std::printf("%-18s %10llu %12.2f %10llu %10llu %10llu\n", name,
                static_cast<unsigned long long>(p.hostOverhead),
                p.ioBusBytesPerCycle,
                static_cast<unsigned long long>(p.niOccupancyPerPacket),
                static_cast<unsigned long long>(p.handlingCost),
                static_cast<unsigned long long>(p.linkLatency));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swsm;

    SweepOptions opts;
    if (!opts.parse(argc, argv))
        return 1;
    BenchReport report("table2", &opts);

    std::printf("Table 2: Communication parameter values "
                "(cycles; bandwidth in bytes/cycle)\n");
    std::printf("%-18s %10s %12s %10s %10s %10s\n", "Set", "HostOvhd",
                "I/O-bus B/c", "NI occ.", "Handling", "Link lat.");
    row("A (achievable)", CommParams::achievable());
    row("H (halfway)", CommParams::halfway());
    row("B (best)", CommParams::best());
    row("W (worse)", CommParams::worse());
    row("X (better-than-B)", CommParams::betterThanBest());

    const CommParams a = CommParams::achievable();
    std::printf("\nAt a 1-IPC 200 MHz processor, the achievable set is "
                "%.1f us overhead,\n%.0f MB/s I/O bus, %.1f us NI "
                "occupancy per packet, %.1f us handling cost\n",
                a.hostOverhead / 200.0, a.ioBusBytesPerCycle * 200.0,
                a.niOccupancyPerPacket / 200.0, a.handlingCost / 200.0);

    report.write();
    return 0;
}
